//! Counterexample-guided abstraction refinement for matching precedence
//! (Algorithm 1, §5 of the paper).
//!
//! The Table 2/3 models ignore greediness, so a satisfying assignment
//! may carry capture values no real ES6 engine would produce (§3.4's
//! `/^a*(a)?$/` example). [`CegarSolver::solve`] runs Algorithm 1
//! verbatim: solve the SMT problem, validate every capturing-language
//! constraint against the concrete ES6 matcher, refine (pin captures for
//! matched words of positive constraints; ban words that disagree with
//! the constraint polarity) and repeat up to a refinement limit.
//!
//! Refinement iterations and probes solve *uncached* at the result
//! level (learned lemmas make their formulas context-dependent), but
//! they still share the solver's compiled-DFA cache: [`CegarSolver`]
//! clones the [`Solver`], and the clone holds the same `Arc`'d cache of
//! minimized, canonically numbered automata — so the membership
//! constraints a refinement re-poses never pay determinization or
//! Hopcroft again, and language-equal regexes across iterations intern
//! to one automaton.

use std::time::Instant;

use es6_matcher::RegExp;
use strsolve::{Formula, Model, Outcome, SolveStats, Solver};

use crate::api::CapturingConstraint;

/// Statistics for one CEGAR query (feeds Table 8).
#[derive(Debug, Clone, Default)]
pub struct CegarStats {
    /// Number of refinement iterations performed.
    pub refinements: usize,
    /// True when the refinement limit was hit (result `Unknown`).
    pub limit_hit: bool,
    /// Aggregated solver statistics across iterations.
    pub solver: SolveStats,
    /// Total wall-clock time of the CEGAR loop.
    pub duration: std::time::Duration,
    /// Whether any constraint in the problem modeled a capture group.
    pub had_captures: bool,
}

/// The result of a CEGAR-checked query.
#[derive(Debug, Clone)]
pub struct CegarResult {
    /// The verdict: `Sat` models have specification-correct captures.
    pub outcome: Outcome,
    /// Query statistics.
    pub stats: CegarStats,
}

/// Algorithm 1: a satisfiability checker for constraint problems with
/// capturing-language membership constraints.
///
/// # Examples
///
/// The §3.4 example: the model alone admits `("aa", "aa", "a")` for
/// `/^a*(a)?$/`, but CEGAR converges to the engine-correct `C₁ = ⊥`:
///
/// ```
/// use expose_core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
/// use regex_syntax_es6::Regex;
/// use strsolve::{Formula, VarPool};
///
/// let regex = Regex::parse_literal("/^a*(a)?$/")?;
/// let mut pool = VarPool::new();
/// let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
/// // Force the input to be "aa".
/// let problem = Formula::and(vec![Formula::eq_lit(c.input, "aa")]);
/// let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
/// let model = result.outcome.model().expect("sat");
/// // Matching precedence: the greedy a* consumes both characters.
/// assert!(!model.get_bool(c.captures[1].defined));
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CegarSolver {
    solver: Solver,
    refinement_limit: usize,
}

impl Default for CegarSolver {
    fn default() -> CegarSolver {
        CegarSolver {
            solver: Solver::default(),
            // §7.2: "We limited the refinement scheme to 20 iterations,
            // which we identified as effective in preliminary testing."
            refinement_limit: 20,
        }
    }
}

impl CegarSolver {
    /// Creates a CEGAR solver with a custom base solver and limit.
    pub fn new(solver: Solver, refinement_limit: usize) -> CegarSolver {
        CegarSolver {
            solver,
            refinement_limit,
        }
    }

    /// The refinement limit.
    pub fn refinement_limit(&self) -> usize {
        self.refinement_limit
    }

    /// Decides `problem ∧ ⋀ⱼ constraintⱼ` with specification-correct
    /// capture assignments (Algorithm 1).
    ///
    /// `problem` carries the rest of the path condition; `constraints`
    /// are the modeled capturing-language constraints.
    pub fn solve(&self, problem: &Formula, constraints: &[CapturingConstraint]) -> CegarResult {
        let start = Instant::now();
        let mut stats = CegarStats {
            had_captures: constraints
                .iter()
                .any(|c| c.captures.len() > 1 || c.regex.ast.has_backref()),
            ..CegarStats::default()
        };

        // P := problem ∧ all constraint models.
        let mut parts = vec![problem.clone()];
        parts.extend(constraints.iter().map(|c| c.formula.clone()));
        let mut p = Formula::and(parts);

        // The cross-query result cache is only consulted for the
        // initial, unrefined problem. Once lemmas have been learned the
        // formula carries query-specific refinements, and caching those
        // would at best pollute the cache and at worst (under a key
        // collision) leak a verdict across incomparable lemma sets —
        // every refined iteration and probe solves uncached.
        let mut unrefined = true;
        loop {
            let (outcome, solve_stats) = if unrefined {
                self.solver.solve(&p)
            } else {
                self.solver.solve_uncached(&p)
            };
            unrefined = false;
            stats.solver.absorb(&solve_stats);
            let model = match outcome {
                Outcome::Sat(m) => m,
                other => {
                    // An inexact negative model does not overapproximate
                    // the complement (the §4.4 shape misses nothing for
                    // Sat — the oracle validates — but its Unsat is not
                    // a proof), so refusal must be downgraded.
                    let unsound_unsat = matches!(other, Outcome::Unsat)
                        && constraints.iter().any(|c| !c.positive && !c.exact);
                    stats.duration = start.elapsed();
                    return CegarResult {
                        outcome: if unsound_unsat {
                            Outcome::Unknown
                        } else {
                            other
                        },
                        stats,
                    };
                }
            };

            let mut failed = false;
            // Capture-mismatched (constraint, word) pairs of this round:
            // their words still satisfy the constraint polarity, only
            // the capture split was spurious.
            let mut mismatches = Vec::new();
            for constraint in constraints {
                match self.validate(constraint, &model) {
                    Validation::Valid => {}
                    Validation::Refine(refinement) => {
                        failed = true;
                        p = Formula::and(vec![p, refinement]);
                    }
                    Validation::CaptureMismatch { word, refinement } => {
                        failed = true;
                        p = Formula::and(vec![p, refinement]);
                        mismatches.push((constraint.input, word));
                    }
                }
            }

            if !failed {
                stats.duration = start.elapsed();
                return CegarResult {
                    outcome: Outcome::Sat(model),
                    stats,
                };
            }
            stats.refinements += 1;
            if stats.refinements >= self.refinement_limit {
                stats.limit_hit = true;
                stats.duration = start.elapsed();
                return CegarResult {
                    outcome: Outcome::Unknown,
                    stats,
                };
            }

            // Progress guarantee: an implication alone does not stop the
            // solver from wandering to a fresh word (with yet another
            // spurious split) every round. Probe the mismatched words
            // directly — their captures are now pinned, so either the
            // probe yields a specification-correct model, or the words
            // provably cannot support the path condition and are banned.
            if !mismatches.is_empty() {
                let pinned = Formula::and(
                    mismatches
                        .iter()
                        .map(|(input, word)| Formula::eq_lit(*input, word.clone()))
                        .collect(),
                );
                let probe = Formula::and(vec![p.clone(), pinned]);
                let (outcome, solve_stats) = self.solver.solve_uncached(&probe);
                stats.solver.absorb(&solve_stats);
                match outcome {
                    Outcome::Sat(m)
                        if constraints
                            .iter()
                            .all(|c| matches!(self.validate(c, &m), Validation::Valid)) =>
                    {
                        stats.duration = start.elapsed();
                        return CegarResult {
                            outcome: Outcome::Sat(m),
                            stats,
                        };
                    }
                    // Spurious on some other constraint: fall through to
                    // the main loop, which will refine it.
                    Outcome::Sat(_) => {}
                    // No engine-correct assignment over these words
                    // satisfies the problem, so at least one of them
                    // must change. Sound to ban as a disjunction.
                    Outcome::Unsat => {
                        p = Formula::and(vec![
                            p,
                            Formula::or(
                                mismatches
                                    .iter()
                                    .map(|(input, word)| Formula::ne_lit(*input, word.clone()))
                                    .collect(),
                            ),
                        ]);
                    }
                    // Budget exhaustion: banning now could make a later
                    // Unsat unsound, so keep only the implication.
                    Outcome::Unknown => {}
                }
            }
        }
    }

    /// Lines 9–22 of Algorithm 1 for one constraint: validates the
    /// candidate assignment with the concrete matcher; returns a
    /// refinement formula when the candidate is spurious.
    fn validate(&self, constraint: &CapturingConstraint, model: &Model) -> Validation {
        let input = model.get_str(constraint.input).unwrap_or_default();
        // ConcreteMatch(M[w], R): the ES6-compliant oracle.
        let mut oracle = RegExp::from_regex(oracle_regex(&constraint.regex));
        let concrete = oracle.exec(input);

        match (concrete, constraint.positive) {
            (Some(result), true) => {
                // Check capture agreement (lines 12–15).
                let mut agree = true;
                for (i, cap) in constraint.captures.iter().enumerate() {
                    let concrete_value = result.captures.get(i).cloned().flatten();
                    let model_value = if model.get_bool(cap.defined) {
                        Some(model.get_str(cap.value).unwrap_or_default().to_string())
                    } else {
                        None
                    };
                    if concrete_value != model_value {
                        agree = false;
                        break;
                    }
                }
                if agree {
                    Validation::Valid
                } else {
                    // Refinement: pin the captures for this word
                    // (line 15): w = M[w] ⟹ ⋀ᵢ Cᵢ = C♮ᵢ.
                    let mut pins = Vec::new();
                    for (i, cap) in constraint.captures.iter().enumerate() {
                        match result.captures.get(i).cloned().flatten() {
                            Some(value) => {
                                pins.push(Formula::bool_is(cap.defined, true));
                                pins.push(Formula::eq_lit(cap.value, value));
                            }
                            None => pins.push(cap.undefined()),
                        }
                    }
                    Validation::CaptureMismatch {
                        word: input.to_string(),
                        refinement: Formula::implies_eq_lit(
                            constraint.input,
                            input,
                            Formula::and(pins),
                        ),
                    }
                }
            }
            // Non-membership constraint, but the word matches
            // concretely: ban the word (line 18).
            (Some(_), false) => Validation::Refine(Formula::ne_lit(constraint.input, input)),
            // Positive constraint, but no concrete match: ban the word
            // (line 22).
            (None, true) => Validation::Refine(Formula::ne_lit(constraint.input, input)),
            // Negative constraint, no concrete match: consistent.
            (None, false) => Validation::Valid,
        }
    }
}

/// The verdict of validating one constraint against a candidate model.
enum Validation {
    /// The concrete matcher agrees with the candidate.
    Valid,
    /// Spurious for polarity reasons; conjoin the refinement and retry.
    Refine(Formula),
    /// The word satisfies the constraint polarity but the capture split
    /// is spurious; the refinement pins the engine's captures for it.
    CaptureMismatch {
        /// The candidate word (value of the constraint's input var).
        word: String,
        /// `input = word ⟹ ⋀ᵢ Cᵢ = C♮ᵢ`.
        refinement: Formula,
    },
}

/// The oracle regex: the original pattern with the stateful flags
/// cleared (`lastIndex` slicing is applied before modeling, Algorithm 2
/// lines 2–4).
fn oracle_regex(regex: &regex_syntax_es6::Regex) -> regex_syntax_es6::Regex {
    let mut r = regex.clone();
    r.flags.global = false;
    r.flags.sticky = false;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::build_match_model;
    use crate::model::BuildConfig;
    use regex_syntax_es6::Regex;
    use strsolve::VarPool;

    fn run(
        literal: &str,
        positive: bool,
        extra: impl FnOnce(&CapturingConstraint) -> Formula,
    ) -> (CegarResult, CapturingConstraint, VarPool) {
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, positive, &mut pool, &BuildConfig::default());
        let problem = extra(&c);
        let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
        (result, c, pool)
    }

    #[test]
    fn paper_refinement_example() {
        // §3.4: /^a*(a)?$/ on "aa" — C1 must be ⊥, not "a".
        let (result, c, _) = run("/^a*(a)?$/", true, |c| Formula::eq_lit(c.input, "aa"));
        let model = result.outcome.model().expect("sat");
        assert!(!model.get_bool(c.captures[1].defined));
        // C0 must be the full greedy match.
        assert_eq!(model.get_str(c.captures[0].value), Some("aa"));
    }

    #[test]
    fn greedy_capture_assignment() {
        // /(a*)(a*)/ on "aaa": greedy first group takes everything.
        let (result, c, _) = run("/^(a*)(a*)$/", true, |c| Formula::eq_lit(c.input, "aaa"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some("aaa"));
        assert_eq!(model.get_str(c.captures[2].value), Some(""));
    }

    #[test]
    fn lazy_quantifier_precedence() {
        // /(a*?)(a*)/ on "aaa": lazy first group takes nothing.
        let (result, c, _) = run("/^(a*?)(a*)$/", true, |c| Formula::eq_lit(c.input, "aaa"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some(""));
        assert_eq!(model.get_str(c.captures[2].value), Some("aaa"));
    }

    #[test]
    fn alternation_precedence() {
        // /(a|ab)/ matching "ab…": leftmost alternative wins at the
        // first matching position, so C1 = "a".
        let (result, c, _) = run("/(a|ab)/", true, |c| Formula::eq_lit(c.input, "ab"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some("a"));
    }

    #[test]
    fn unsat_when_input_cannot_match() {
        let (result, _, _) = run("/^[0-9]+$/", true, |c| Formula::eq_lit(c.input, "xyz"));
        assert_eq!(result.outcome, Outcome::Unsat);
    }

    #[test]
    fn negative_query_returns_nonmatching_word() {
        let (result, c, _) = run("/^a+$/", false, |_| Formula::top());
        let model = result.outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = RegExp::from_regex(c.regex.clone());
        assert!(!oracle.test(input));
    }

    #[test]
    fn backreference_membership_via_cegar() {
        // /^(ab|c)\1$/ requires the two halves to be equal.
        let (result, c, _) = run(r"/^(ab|c)\1$/", true, |_| Formula::top());
        let model = result.outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = RegExp::from_regex(c.regex.clone());
        assert!(oracle.test(input), "witness {input:?} must match");
    }

    #[test]
    fn stats_track_refinements() {
        let (result, _, _) = run("/^a*(a)?$/", true, |c| Formula::eq_lit(c.input, "aa"));
        // The spurious capture assignment may or may not be proposed
        // first, but the loop must terminate within the limit.
        assert!(!result.stats.limit_hit);
        assert!(result.stats.refinements <= 20);
    }
}

//! Counterexample-guided abstraction refinement for matching precedence
//! (Algorithm 1, §5 of the paper).
//!
//! The Table 2/3 models ignore greediness, so a satisfying assignment
//! may carry capture values no real ES6 engine would produce (§3.4's
//! `/^a*(a)?$/` example). [`CegarSolver::solve`] runs Algorithm 1
//! verbatim: solve the SMT problem, validate every capturing-language
//! constraint against the concrete ES6 matcher, refine (pin captures for
//! matched words of positive constraints; ban words that disagree with
//! the constraint polarity) and repeat up to a refinement limit.
//!
//! Refinement iterations and probes solve *uncached* at the result
//! level (learned lemmas make their formulas context-dependent), but
//! they still share the solver's compiled-DFA cache: [`CegarSolver`]
//! clones the [`Solver`], and the clone holds the same `Arc`'d cache of
//! minimized, canonically numbered automata — so the membership
//! constraints a refinement re-poses never pay determinization or
//! Hopcroft again, and language-equal regexes across iterations intern
//! to one automaton.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use es6_matcher::RegExp;
use parking_lot::Mutex;
use strsolve::{Canonicalizer, Formula, Lru, Model, Outcome, SolveSession, SolveStats, Solver};

use crate::api::CapturingConstraint;

/// Statistics for one CEGAR query (feeds Table 8).
#[derive(Debug, Clone, Default)]
pub struct CegarStats {
    /// Number of refinement iterations performed.
    pub refinements: usize,
    /// True when the refinement limit was hit (result `Unknown`).
    pub limit_hit: bool,
    /// Aggregated solver statistics across iterations.
    pub solver: SolveStats,
    /// Total wall-clock time of the CEGAR loop.
    pub duration: std::time::Duration,
    /// Whether any constraint in the problem modeled a capture group.
    pub had_captures: bool,
    /// True when the whole run (verdict, refinement count, model) was
    /// replayed from a [`CegarCache`] instead of re-running the loop.
    pub replayed: bool,
}

/// The result of a CEGAR-checked query.
#[derive(Debug, Clone)]
pub struct CegarResult {
    /// The verdict: `Sat` models have specification-correct captures.
    pub outcome: Outcome,
    /// Query statistics.
    pub stats: CegarStats,
}

/// Algorithm 1: a satisfiability checker for constraint problems with
/// capturing-language membership constraints.
///
/// # Examples
///
/// The §3.4 example: the model alone admits `("aa", "aa", "a")` for
/// `/^a*(a)?$/`, but CEGAR converges to the engine-correct `C₁ = ⊥`:
///
/// ```
/// use expose_core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
/// use regex_syntax_es6::Regex;
/// use strsolve::{Formula, VarPool};
///
/// let regex = Regex::parse_literal("/^a*(a)?$/")?;
/// let mut pool = VarPool::new();
/// let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
/// // Force the input to be "aa".
/// let problem = Formula::and(vec![Formula::eq_lit(c.input, "aa")]);
/// let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
/// let model = result.outcome.model().expect("sat");
/// // Matching precedence: the greedy a* consumes both characters.
/// assert!(!model.get_bool(c.captures[1].defined));
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CegarSolver {
    solver: Solver,
    refinement_limit: usize,
}

impl Default for CegarSolver {
    fn default() -> CegarSolver {
        CegarSolver {
            solver: Solver::default(),
            // §7.2: "We limited the refinement scheme to 20 iterations,
            // which we identified as effective in preliminary testing."
            refinement_limit: 20,
        }
    }
}

impl CegarSolver {
    /// Creates a CEGAR solver with a custom base solver and limit.
    pub fn new(solver: Solver, refinement_limit: usize) -> CegarSolver {
        CegarSolver {
            solver,
            refinement_limit,
        }
    }

    /// The refinement limit.
    pub fn refinement_limit(&self) -> usize {
        self.refinement_limit
    }

    /// Decides `problem ∧ ⋀ⱼ constraintⱼ` with specification-correct
    /// capture assignments (Algorithm 1).
    ///
    /// `problem` carries the rest of the path condition; `constraints`
    /// are the modeled capturing-language constraints.
    pub fn solve(&self, problem: &Formula, constraints: &[CapturingConstraint]) -> CegarResult {
        let start = Instant::now();
        // P := problem ∧ all constraint models.
        let mut parts = vec![problem.clone()];
        parts.extend(constraints.iter().map(|c| c.formula.clone()));
        let p = Formula::and(parts);
        self.run(&self.solver, p, constraints, start, |f| {
            self.solver.solve(f)
        })
    }

    /// The incremental counterpart of [`CegarSolver::solve`]: the
    /// shared trace prefix lives in `session` (frames `0..depth`) and
    /// only `problem_items` — the flipped clause tie — plus the
    /// constraint models form the per-flip assumption.
    ///
    /// Iteration 0 solves through the session's pre-keyed assembly
    /// (reusing the canonical prefix and the shared
    /// [`strsolve::QueryCache`]); refinement iterations and probes run
    /// uncached against the assembled original formula, exactly like
    /// the from-scratch loop. When a [`CegarCache`] is supplied, a
    /// finished run (verdict, model, refinement count) keyed by the
    /// *complete* canonical problem plus constraint signatures is
    /// replayed wholesale for structurally identical re-posings — the
    /// dominant cross-trace case, since a child trace re-poses its
    /// parent's prefix flips verbatim. Replay is exact: the solver and
    /// oracle are deterministic, so a fresh loop on an identical
    /// canonical problem reproduces the identical result.
    pub fn solve_incremental(
        &self,
        session: &SolveSession,
        depth: usize,
        problem_items: &[Formula],
        constraints: &[CapturingConstraint],
        verdicts: Option<&CegarCache>,
    ) -> CegarResult {
        let start = Instant::now();
        let mut assumption: Vec<Formula> = problem_items.to_vec();
        assumption.extend(constraints.iter().map(|c| c.formula.clone()));
        let query = session.assemble(depth, &assumption);

        let keyed = verdicts.map(|cache| {
            let (sigs, ext) = constraint_signatures(&query.canonical, constraints);
            let key = CegarKey {
                formula: query.canonical.formula.clone(),
                constraints: sigs,
                fingerprint: session.solver().config().fingerprint(),
                refinement_limit: self.refinement_limit,
            };
            (cache, key, ext)
        });

        if let Some((cache, key, ext)) = &keyed {
            if let Some(run) = cache.lookup(key) {
                let outcome = run.rehydrate(ext);
                let elapsed = start.elapsed();
                return CegarResult {
                    outcome,
                    stats: CegarStats {
                        refinements: run.refinements,
                        limit_hit: run.limit_hit,
                        had_captures: had_captures(constraints),
                        solver: SolveStats {
                            duration: elapsed,
                            prefix_reuse_hits: query.reused_frames(),
                            ..SolveStats::default()
                        },
                        duration: elapsed,
                        replayed: true,
                    },
                };
            }
        }

        let result = self.run(
            session.solver(),
            query.original.clone(),
            constraints,
            start,
            |_| session.solve_assembled(&query),
        );
        if let Some((cache, key, ext)) = keyed {
            cache.store(key, &result, &ext);
        }
        result
    }

    /// The Algorithm 1 loop. Iteration 0 goes through `solve0` (which
    /// may consult the result cache); every refined iteration and probe
    /// solves uncached through `solver`.
    fn run(
        &self,
        solver: &Solver,
        mut p: Formula,
        constraints: &[CapturingConstraint],
        start: Instant,
        solve0: impl FnOnce(&Formula) -> (Outcome, SolveStats),
    ) -> CegarResult {
        let mut stats = CegarStats {
            had_captures: had_captures(constraints),
            ..CegarStats::default()
        };

        // The cross-query result cache is only consulted for the
        // initial, unrefined problem. Once lemmas have been learned the
        // formula carries query-specific refinements, and caching those
        // would at best pollute the cache and at worst (under a key
        // collision) leak a verdict across incomparable lemma sets —
        // every refined iteration and probe solves uncached.
        let mut solve0 = Some(solve0);
        loop {
            let (outcome, solve_stats) = match solve0.take() {
                Some(initial) => initial(&p),
                None => solver.solve_uncached(&p),
            };
            stats.solver.absorb(&solve_stats);
            let model = match outcome {
                Outcome::Sat(m) => m,
                other => {
                    // An inexact negative model does not overapproximate
                    // the complement (the §4.4 shape misses nothing for
                    // Sat — the oracle validates — but its Unsat is not
                    // a proof), so refusal must be downgraded.
                    let unsound_unsat = matches!(other, Outcome::Unsat)
                        && constraints.iter().any(|c| !c.positive && !c.exact);
                    stats.duration = start.elapsed();
                    return CegarResult {
                        outcome: if unsound_unsat {
                            Outcome::Unknown
                        } else {
                            other
                        },
                        stats,
                    };
                }
            };

            let mut failed = false;
            // Capture-mismatched (constraint, word) pairs of this round:
            // their words still satisfy the constraint polarity, only
            // the capture split was spurious.
            let mut mismatches = Vec::new();
            for constraint in constraints {
                match self.validate(constraint, &model) {
                    Validation::Valid => {}
                    Validation::Refine(refinement) => {
                        failed = true;
                        p = Formula::and(vec![p, refinement]);
                    }
                    Validation::CaptureMismatch { word, refinement } => {
                        failed = true;
                        p = Formula::and(vec![p, refinement]);
                        mismatches.push((constraint.input, word));
                    }
                }
            }

            if !failed {
                stats.duration = start.elapsed();
                return CegarResult {
                    outcome: Outcome::Sat(model),
                    stats,
                };
            }
            stats.refinements += 1;
            if stats.refinements >= self.refinement_limit {
                stats.limit_hit = true;
                stats.duration = start.elapsed();
                return CegarResult {
                    outcome: Outcome::Unknown,
                    stats,
                };
            }

            // Progress guarantee: an implication alone does not stop the
            // solver from wandering to a fresh word (with yet another
            // spurious split) every round. Probe the mismatched words
            // directly — their captures are now pinned, so either the
            // probe yields a specification-correct model, or the words
            // provably cannot support the path condition and are banned.
            if !mismatches.is_empty() {
                let pinned = Formula::and(
                    mismatches
                        .iter()
                        .map(|(input, word)| Formula::eq_lit(*input, word.clone()))
                        .collect(),
                );
                let probe = Formula::and(vec![p.clone(), pinned]);
                let (outcome, solve_stats) = solver.solve_uncached(&probe);
                stats.solver.absorb(&solve_stats);
                match outcome {
                    Outcome::Sat(m)
                        if constraints
                            .iter()
                            .all(|c| matches!(self.validate(c, &m), Validation::Valid)) =>
                    {
                        stats.duration = start.elapsed();
                        return CegarResult {
                            outcome: Outcome::Sat(m),
                            stats,
                        };
                    }
                    // Spurious on some other constraint: fall through to
                    // the main loop, which will refine it.
                    Outcome::Sat(_) => {}
                    // No engine-correct assignment over these words
                    // satisfies the problem, so at least one of them
                    // must change. Sound to ban as a disjunction.
                    Outcome::Unsat => {
                        p = Formula::and(vec![
                            p,
                            Formula::or(
                                mismatches
                                    .iter()
                                    .map(|(input, word)| Formula::ne_lit(*input, word.clone()))
                                    .collect(),
                            ),
                        ]);
                    }
                    // Budget exhaustion: banning now could make a later
                    // Unsat unsound, so keep only the implication.
                    Outcome::Unknown => {}
                }
            }
        }
    }

    /// Lines 9–22 of Algorithm 1 for one constraint: validates the
    /// candidate assignment with the concrete matcher; returns a
    /// refinement formula when the candidate is spurious.
    fn validate(&self, constraint: &CapturingConstraint, model: &Model) -> Validation {
        let input = model.get_str(constraint.input).unwrap_or_default();
        // ConcreteMatch(M[w], R): the ES6-compliant oracle.
        let mut oracle = RegExp::from_regex(oracle_regex(&constraint.regex));
        let concrete = oracle.exec(input);

        match (concrete, constraint.positive) {
            (Some(result), true) => {
                // Check capture agreement (lines 12–15).
                let mut agree = true;
                for (i, cap) in constraint.captures.iter().enumerate() {
                    let concrete_value = result.captures.get(i).cloned().flatten();
                    let model_value = if model.get_bool(cap.defined) {
                        Some(model.get_str(cap.value).unwrap_or_default().to_string())
                    } else {
                        None
                    };
                    if concrete_value != model_value {
                        agree = false;
                        break;
                    }
                }
                if agree {
                    Validation::Valid
                } else {
                    // Refinement: pin the captures for this word
                    // (line 15): w = M[w] ⟹ ⋀ᵢ Cᵢ = C♮ᵢ.
                    let mut pins = Vec::new();
                    for (i, cap) in constraint.captures.iter().enumerate() {
                        match result.captures.get(i).cloned().flatten() {
                            Some(value) => {
                                pins.push(Formula::bool_is(cap.defined, true));
                                pins.push(Formula::eq_lit(cap.value, value));
                            }
                            None => pins.push(cap.undefined()),
                        }
                    }
                    Validation::CaptureMismatch {
                        word: input.to_string(),
                        refinement: Formula::implies_eq_lit(
                            constraint.input,
                            input,
                            Formula::and(pins),
                        ),
                    }
                }
            }
            // Non-membership constraint, but the word matches
            // concretely: ban the word (line 18).
            (Some(_), false) => Validation::Refine(Formula::ne_lit(constraint.input, input)),
            // Positive constraint, but no concrete match: ban the word
            // (line 22).
            (None, true) => Validation::Refine(Formula::ne_lit(constraint.input, input)),
            // Negative constraint, no concrete match: consistent.
            (None, false) => Validation::Valid,
        }
    }
}

/// The verdict of validating one constraint against a candidate model.
enum Validation {
    /// The concrete matcher agrees with the candidate.
    Valid,
    /// Spurious for polarity reasons; conjoin the refinement and retry.
    Refine(Formula),
    /// The word satisfies the constraint polarity but the capture split
    /// is spurious; the refinement pins the engine's captures for it.
    CaptureMismatch {
        /// The candidate word (value of the constraint's input var).
        word: String,
        /// `input = word ⟹ ⋀ᵢ Cᵢ = C♮ᵢ`.
        refinement: Formula,
    },
}

/// Whether any constraint models a capture group or backreference.
fn had_captures(constraints: &[CapturingConstraint]) -> bool {
    constraints
        .iter()
        .any(|c| c.captures.len() > 1 || c.regex.ast.has_backref())
}

/// Everything the CEGAR loop's behaviour depends on for one constraint,
/// in canonical variable space: the oracle identity (pattern source +
/// flags, which determine the concrete matcher exactly), the polarity
/// and exactness (which gate the unsound-Unsat downgrade), and the
/// canonical ids of the variables that refinements reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ConstraintSig {
    source: String,
    flags: u8,
    positive: bool,
    exact: bool,
    input: u32,
    wrapped: u32,
    /// `(value, defined)` canonical ids per capture group.
    captures: Vec<(u32, u32)>,
}

/// The cache key of one whole CEGAR run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CegarKey {
    /// The canonical iteration-0 formula (problem ∧ constraint models).
    formula: Formula,
    /// Constraint signatures, in event order.
    constraints: Vec<ConstraintSig>,
    /// [`strsolve::SolverConfig::fingerprint`] of the solving limits.
    fingerprint: u64,
    refinement_limit: usize,
}

/// A finished run in canonical variable space.
#[derive(Debug, Clone)]
struct CachedRun {
    outcome: CachedOutcome,
    refinements: usize,
    limit_hit: bool,
}

#[derive(Debug, Clone)]
enum CachedOutcome {
    Sat {
        strs: Vec<(u32, String)>,
        bools: Vec<(u32, bool)>,
    },
    Unsat,
    Unknown,
}

impl CachedRun {
    fn rehydrate(&self, ext: &Canonicalizer) -> Outcome {
        match &self.outcome {
            CachedOutcome::Sat { strs, bools } => {
                let mut model = Model::new();
                for (canon, value) in strs {
                    model.set_str(ext.str_vars()[*canon as usize], value.clone());
                }
                for (canon, value) in bools {
                    model.set_bool(ext.bool_vars()[*canon as usize], *value);
                }
                Outcome::Sat(model)
            }
            CachedOutcome::Unsat => Outcome::Unsat,
            CachedOutcome::Unknown => Outcome::Unknown,
        }
    }
}

/// Builds the constraint signatures for a canonical query, extending
/// the query's renumbering with any constraint variables that do not
/// occur in the formula (possible for approximate models) so a replayed
/// model can cover every variable a refined solve might assign. The
/// extension is a pure function of (query, constraints), so store and
/// lookup sides always agree.
fn constraint_signatures(
    canonical: &strsolve::CanonicalQuery,
    constraints: &[CapturingConstraint],
) -> (Vec<ConstraintSig>, Canonicalizer) {
    let mut ext = canonical.canonicalizer();
    let sigs = constraints
        .iter()
        .map(|c| ConstraintSig {
            source: c.regex.source.clone(),
            flags: crate::cache::pack_flags(c.regex.flags),
            positive: c.positive,
            exact: c.exact,
            input: ext.map_str(c.input).index(),
            wrapped: ext.map_str(c.wrapped).index(),
            captures: c
                .captures
                .iter()
                .map(|cap| {
                    (
                        ext.map_str(cap.value).index(),
                        ext.map_bool(cap.defined).index(),
                    )
                })
                .collect(),
        })
        .collect();
    (sigs, ext)
}

/// A shared, thread-safe cache of *whole validated CEGAR runs*.
///
/// Where [`strsolve::QueryCache`] replays single solver verdicts, this
/// replays the entire Algorithm 1 loop — final validated outcome,
/// refinement count and limit flag — keyed by the complete canonical
/// iteration-0 problem, the constraint signatures, the solver
/// fingerprint and the refinement limit. Since the solver and the
/// concrete ES6 oracle are both deterministic, a fresh run of an
/// identical canonical problem necessarily retraces the identical
/// refinement chain to the identical result, so replay is exact — this
/// is how banned words and capture-pinning lemmas learned for one flip
/// are soundly carried to its verbatim re-posings (retraction-free: a
/// different assumption produces a different key by construction).
///
/// This is the cross-trace node sink in DSE: a child trace re-poses
/// every prefix flip of its parent verbatim, and each re-posing skips
/// the whole refinement chain instead of just iteration 0.
#[derive(Debug)]
pub struct CegarCache {
    entries: Mutex<Lru<CegarKey, CachedRun>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CegarCache {
    /// Creates a cache holding at most `capacity` runs (`0` disables).
    pub fn new(capacity: usize) -> CegarCache {
        CegarCache::with_byte_budget(capacity, 0)
    }

    /// Creates a cache additionally bounded by an approximate byte
    /// budget (`0` = unlimited).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> CegarCache {
        CegarCache {
            entries: Mutex::new(Lru::with_byte_budget(capacity, byte_budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured entry capacity (`0` = the cache is disabled).
    pub fn capacity(&self) -> usize {
        self.entries.lock().capacity()
    }

    /// Runs replayed from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a full CEGAR loop.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resident run count.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no run is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Approximate bytes held by resident runs.
    pub fn bytes(&self) -> usize {
        self.entries.lock().bytes()
    }

    /// Runs evicted so far.
    pub fn evictions(&self) -> u64 {
        self.entries.lock().evictions()
    }

    fn lookup(&self, key: &CegarKey) -> Option<CachedRun> {
        let found = self.entries.lock().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: CegarKey, result: &CegarResult, ext: &Canonicalizer) {
        let outcome = match &result.outcome {
            Outcome::Sat(model) => CachedOutcome::Sat {
                // Only solver-assigned variables, so a rehydrated model
                // is indistinguishable from the fresh run's.
                strs: ext
                    .str_vars()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.get_str(*v).map(|s| (i as u32, s.to_string())))
                    .collect(),
                bools: ext
                    .bool_vars()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| model.try_get_bool(*v).map(|b| (i as u32, b)))
                    .collect(),
            },
            Outcome::Unsat => CachedOutcome::Unsat,
            Outcome::Unknown => CachedOutcome::Unknown,
        };
        let weight = key.formula.approx_bytes()
            + key
                .constraints
                .iter()
                .map(|c| 64 + c.source.len() + c.captures.len() * 8)
                .sum::<usize>()
            + match &outcome {
                CachedOutcome::Sat { strs, bools } => {
                    strs.iter().map(|(_, s)| 24 + s.len()).sum::<usize>() + bools.len() * 8
                }
                _ => 16,
            };
        let run = CachedRun {
            outcome,
            refinements: result.stats.refinements,
            limit_hit: result.stats.limit_hit,
        };
        self.entries.lock().insert_weighted(key, run, weight);
    }
}

/// The oracle regex: the original pattern with the stateful flags
/// cleared (`lastIndex` slicing is applied before modeling, Algorithm 2
/// lines 2–4).
fn oracle_regex(regex: &regex_syntax_es6::Regex) -> regex_syntax_es6::Regex {
    let mut r = regex.clone();
    r.flags.global = false;
    r.flags.sticky = false;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::build_match_model;
    use crate::model::BuildConfig;
    use regex_syntax_es6::Regex;
    use strsolve::VarPool;

    fn run(
        literal: &str,
        positive: bool,
        extra: impl FnOnce(&CapturingConstraint) -> Formula,
    ) -> (CegarResult, CapturingConstraint, VarPool) {
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, positive, &mut pool, &BuildConfig::default());
        let problem = extra(&c);
        let result = CegarSolver::default().solve(&problem, std::slice::from_ref(&c));
        (result, c, pool)
    }

    #[test]
    fn paper_refinement_example() {
        // §3.4: /^a*(a)?$/ on "aa" — C1 must be ⊥, not "a".
        let (result, c, _) = run("/^a*(a)?$/", true, |c| Formula::eq_lit(c.input, "aa"));
        let model = result.outcome.model().expect("sat");
        assert!(!model.get_bool(c.captures[1].defined));
        // C0 must be the full greedy match.
        assert_eq!(model.get_str(c.captures[0].value), Some("aa"));
    }

    #[test]
    fn greedy_capture_assignment() {
        // /(a*)(a*)/ on "aaa": greedy first group takes everything.
        let (result, c, _) = run("/^(a*)(a*)$/", true, |c| Formula::eq_lit(c.input, "aaa"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some("aaa"));
        assert_eq!(model.get_str(c.captures[2].value), Some(""));
    }

    #[test]
    fn lazy_quantifier_precedence() {
        // /(a*?)(a*)/ on "aaa": lazy first group takes nothing.
        let (result, c, _) = run("/^(a*?)(a*)$/", true, |c| Formula::eq_lit(c.input, "aaa"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some(""));
        assert_eq!(model.get_str(c.captures[2].value), Some("aaa"));
    }

    #[test]
    fn alternation_precedence() {
        // /(a|ab)/ matching "ab…": leftmost alternative wins at the
        // first matching position, so C1 = "a".
        let (result, c, _) = run("/(a|ab)/", true, |c| Formula::eq_lit(c.input, "ab"));
        let model = result.outcome.model().expect("sat");
        assert_eq!(model.get_str(c.captures[1].value), Some("a"));
    }

    #[test]
    fn unsat_when_input_cannot_match() {
        let (result, _, _) = run("/^[0-9]+$/", true, |c| Formula::eq_lit(c.input, "xyz"));
        assert_eq!(result.outcome, Outcome::Unsat);
    }

    #[test]
    fn negative_query_returns_nonmatching_word() {
        let (result, c, _) = run("/^a+$/", false, |_| Formula::top());
        let model = result.outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = RegExp::from_regex(c.regex.clone());
        assert!(!oracle.test(input));
    }

    #[test]
    fn backreference_membership_via_cegar() {
        // /^(ab|c)\1$/ requires the two halves to be equal.
        let (result, c, _) = run(r"/^(ab|c)\1$/", true, |_| Formula::top());
        let model = result.outcome.model().expect("sat");
        let input = model.get_str(c.input).expect("assigned");
        let mut oracle = RegExp::from_regex(c.regex.clone());
        assert!(oracle.test(input), "witness {input:?} must match");
    }

    #[test]
    fn stats_track_refinements() {
        let (result, _, _) = run("/^a*(a)?$/", true, |c| Formula::eq_lit(c.input, "aa"));
        // The spurious capture assignment may or may not be proposed
        // first, but the loop must terminate within the limit.
        assert!(!result.stats.limit_hit);
        assert!(result.stats.refinements <= 20);
    }

    /// Builds a two-frame session plus one flip assumption and the
    /// matching scratch problem for one of the refinement-heavy
    /// examples.
    fn incremental_fixture(
        literal: &str,
        input_lit: Option<&str>,
    ) -> (SolveSession, Vec<Formula>, Formula, CapturingConstraint) {
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let guard = pool.fresh_str("guard");
        let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
        let frames = vec![
            vec![Formula::ne_lit(guard, "off")],
            match input_lit {
                Some(word) => vec![Formula::eq_lit(c.input, word)],
                None => vec![],
            },
        ];
        let assumption = vec![Formula::ne_lit(c.input, "zzz")];
        let mut scratch_items: Vec<Formula> = frames.iter().flatten().cloned().collect();
        scratch_items.extend(assumption.iter().cloned());
        let problem = Formula::and(scratch_items);
        let mut session = SolveSession::new(Solver::default());
        for frame in &frames {
            session.push(frame.clone());
        }
        (session, assumption, problem, c)
    }

    #[test]
    fn incremental_matches_scratch() {
        for (literal, input) in [
            ("/^a*(a)?$/", Some("aa")),
            ("/^(a*)(a*)$/", Some("aaa")),
            ("/^[0-9]+$/", Some("xyz")),
            ("/(a|ab)/", Some("ab")),
            (r"/^(ab|c)\1$/", None),
        ] {
            let (session, assumption, problem, c) = incremental_fixture(literal, input);
            let cegar = CegarSolver::default();
            let scratch = cegar.solve(&problem, std::slice::from_ref(&c));
            let incremental = cegar.solve_incremental(
                &session,
                session.depth(),
                &assumption,
                std::slice::from_ref(&c),
                None,
            );
            assert_eq!(incremental.outcome, scratch.outcome, "{literal}");
            assert_eq!(
                incremental.stats.refinements, scratch.stats.refinements,
                "{literal}"
            );
            assert_eq!(incremental.stats.limit_hit, scratch.stats.limit_hit);
            assert!(!incremental.stats.replayed);
        }
    }

    #[test]
    fn verdict_cache_replays_whole_runs() {
        let (session, assumption, problem, c) = incremental_fixture("/^a*(a)?$/", Some("aa"));
        let cegar = CegarSolver::default();
        let cache = CegarCache::new(16);
        let first = cegar.solve_incremental(
            &session,
            session.depth(),
            &assumption,
            std::slice::from_ref(&c),
            Some(&cache),
        );
        assert!(!first.stats.replayed);
        assert_eq!(cache.misses(), 1);
        assert!(first.stats.refinements > 0, "fixture must refine");

        let second = cegar.solve_incremental(
            &session,
            session.depth(),
            &assumption,
            std::slice::from_ref(&c),
            Some(&cache),
        );
        assert!(second.stats.replayed);
        assert_eq!(cache.hits(), 1);
        assert_eq!(second.outcome, first.outcome);
        assert_eq!(second.stats.refinements, first.stats.refinements);
        assert_eq!(second.stats.limit_hit, first.stats.limit_hit);
        assert_eq!(second.stats.solver.nodes, 0, "replay must not search");
        // And the replayed run still matches a from-scratch loop.
        let scratch = cegar.solve(&problem, std::slice::from_ref(&c));
        assert_eq!(second.outcome, scratch.outcome);
    }

    #[test]
    fn verdict_cache_separates_different_assumptions() {
        let (session, assumption, _, c) = incremental_fixture("/^a*(a)?$/", Some("aa"));
        let cegar = CegarSolver::default();
        let cache = CegarCache::new(16);
        cegar.solve_incremental(
            &session,
            session.depth(),
            &assumption,
            std::slice::from_ref(&c),
            Some(&cache),
        );
        // A different assumption must key a different entry.
        let other = vec![Formula::ne_lit(c.input, "qqq")];
        let result = cegar.solve_incremental(
            &session,
            session.depth(),
            &other,
            std::slice::from_ref(&c),
            Some(&cache),
        );
        assert!(!result.stats.replayed);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }
}

//! Non-membership models (§4.4 of the paper).
//!
//! A negative constraint `∀C₀…Cₙ: (w, C₀, …, Cₙ) ∉ Lc(R)` cannot be
//! expressed directly over free capture variables. The paper's negated
//! models keep the *structural* parts positive — word partitions
//! (`w = w₁ ++ w₂`) and capture bindings (`Cᵢ = w`) — and disjoin the
//! negations of the language and emptiness constraints: "for all capture
//! assignments there exists some partition of the word such that one of
//! the individual constraints is violated".
//!
//! [`nnf_negate`] implements that transformation over the formulas
//! produced by [`crate::model::ModelBuilder`]. The result
//! *overapproximates* true non-membership (some matching words also
//! satisfy it); Algorithm 1's lines 16–18 refine those away, so the
//! CEGAR-completed procedure is exact (§5.4).
//!
//! When the regex is backreference-free, callers should prefer the exact
//! classical reduction `w ∉ L(...)` from
//! [`crate::classical::try_wrapped_word_language`]; this module is the
//! general path.

use strsolve::{Atom, Formula};

/// Structurally negates a model formula per §4.4.
///
/// * `Or` → `And` of negations (De Morgan);
/// * `And` → keep word partitions (`EqConcat`) positive, disjoin the
///   negations of the remaining conjuncts;
/// * atoms flip polarity (`InRe ↔ NotInRe`, `EqLit ↔ NeLit`,
///   `Bool(b,v) ↔ Bool(b,¬v)`, `EqVar ↔ NeVar`);
/// * a conjunction of *only* partitions cannot be violated, so its
///   negation is `⊥`.
///
/// Keeping partitions positive while negating capture bindings makes the
/// result strictly *weaker* than true non-membership in places (e.g. a
/// capture binding can be "violated" by choosing a different capture
/// value), which is safe: the result overapproximates the non-matching
/// words, and spurious solutions are eliminated by Algorithm 1's
/// refinement (lines 16–18).
///
/// # Examples
///
/// ```
/// use expose_core::negate::nnf_negate;
/// use strsolve::{Formula, VarPool};
///
/// let mut pool = VarPool::new();
/// let v = pool.fresh_str("v");
/// let f = Formula::or(vec![Formula::eq_lit(v, "a"), Formula::eq_lit(v, "b")]);
/// let neg = nnf_negate(&f);
/// assert_eq!(
///     neg,
///     Formula::and(vec![Formula::ne_lit(v, "a"), Formula::ne_lit(v, "b")])
/// );
/// ```
pub fn nnf_negate(formula: &Formula) -> Formula {
    match formula {
        Formula::Atom(atom) => negate_atom(atom),
        Formula::Or(items) => Formula::and(items.iter().map(nnf_negate).collect()),
        Formula::And(items) => {
            let mut structural = Vec::new();
            let mut negated = Vec::new();
            for item in items {
                if is_structural(item) {
                    structural.push(item.clone());
                } else {
                    negated.push(nnf_negate(item));
                }
            }
            if negated.is_empty() {
                // Pure structure cannot be violated.
                return Formula::bottom();
            }
            structural.push(Formula::or(negated));
            Formula::and(structural)
        }
    }
}

/// True for atoms that §4.4 keeps positive under negation: word
/// partitions.
fn is_structural(f: &Formula) -> bool {
    matches!(f, Formula::Atom(Atom::EqConcat(..)))
}

fn negate_atom(atom: &Atom) -> Formula {
    Formula::Atom(match atom {
        Atom::InRe(v, re) => Atom::NotInRe(*v, re.clone()),
        Atom::NotInRe(v, re) => Atom::InRe(*v, re.clone()),
        Atom::EqLit(v, s) => Atom::NeLit(*v, s.clone()),
        Atom::NeLit(v, s) => Atom::EqLit(*v, s.clone()),
        Atom::EqVar(a, b) => Atom::NeVar(*a, *b),
        Atom::NeVar(a, b) => Atom::EqVar(*a, *b),
        // A bare partition cannot be violated (§4.4 keeps them).
        Atom::EqConcat(..) => Atom::False,
        Atom::Bool(b, v) => Atom::Bool(*b, !*v),
        Atom::True => Atom::False,
        Atom::False => Atom::True,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strsolve::{Term, VarPool};

    #[test]
    fn atom_negations() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let b = pool.fresh_bool("b");
        assert_eq!(
            nnf_negate(&Formula::eq_lit(v, "x")),
            Formula::ne_lit(v, "x")
        );
        assert_eq!(
            nnf_negate(&Formula::bool_is(b, true)),
            Formula::bool_is(b, false)
        );
        assert_eq!(nnf_negate(&Formula::top()), Formula::bottom());
    }

    #[test]
    fn and_keeps_partitions_positive() {
        // ¬(w = a ++ b ∧ a ∈ L) = (w = a ++ b) ∧ (a ∉ L) — the §4.4 shape.
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let a = pool.fresh_str("a");
        let b = pool.fresh_str("b");
        let f = Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(a), Term::Var(b)]),
            Formula::eq_lit(a, "x"),
        ]);
        let neg = nnf_negate(&f);
        assert_eq!(
            neg,
            Formula::and(vec![
                Formula::eq_concat(w, vec![Term::Var(a), Term::Var(b)]),
                Formula::ne_lit(a, "x"),
            ])
        );
    }

    #[test]
    fn pure_structure_negates_to_bottom() {
        let mut pool = VarPool::new();
        let w = pool.fresh_str("w");
        let a = pool.fresh_str("a");
        let f = Formula::and(vec![Formula::eq_concat(w, vec![Term::Var(a)])]);
        // Formula::and of a single item collapses to the atom itself.
        assert_eq!(nnf_negate(&f), Formula::bottom());
    }

    #[test]
    fn or_becomes_and() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let f = Formula::or(vec![Formula::eq_lit(v, "a"), Formula::eq_lit(v, "b")]);
        assert_eq!(
            nnf_negate(&f),
            Formula::and(vec![Formula::ne_lit(v, "a"), Formula::ne_lit(v, "b"),])
        );
    }

    #[test]
    fn double_negation_of_atoms_is_identity() {
        let mut pool = VarPool::new();
        let v = pool.fresh_str("v");
        let u = pool.fresh_str("u");
        for f in [
            Formula::eq_lit(v, "a"),
            Formula::ne_lit(v, "a"),
            Formula::eq_var(v, u),
            Formula::ne_var(v, u),
        ] {
            assert_eq!(nnf_negate(&nnf_negate(&f)), f);
        }
    }
}

//! The capturing-language model builder (Tables 2 and 3 of the paper).
//!
//! [`ModelBuilder`] recursively translates an ES6 regex AST into a
//! [`strsolve::Formula`] over string variables, such that the formula is
//! satisfied by `(w, C₀, …, Cₙ)` whenever the tuple is in (an
//! overapproximation of) the capturing language `Lc(R)` (§4.2). Matching
//! precedence is deliberately ignored here — the CEGAR loop of
//! [`crate::cegar`] restores it (§5).
//!
//! Design notes mirroring the paper:
//!
//! * **Capture variables** are pairs of a string value and a definedness
//!   flag ([`CaptureVar`]), since `⊥` (undefined) is distinct from `ε`.
//! * **Quantifier expansion** (§4.1) duplicates capture groups; shadow
//!   frames allocate fresh variables for non-final copies, and the
//!   canonical `Cᵢ` is bound by the last copy (`Cᵢ = Cᵢ,last`).
//! * **Backreferences** (Table 3) are classified on the fly: references
//!   to groups that have not yet closed match `ε`; quantified
//!   backreference contexts use the bounded same-value expansion that
//!   realizes rows 3–5 of Table 3 uniformly (the paper's practical,
//!   deliberately underapproximate rule — §4.3, §5.4). A sound bounded
//!   expansion with per-iteration shadow captures is available behind
//!   [`BuildConfig::sound_mutable_backrefs`] for the ablation study.
//! * **Anchors and word boundaries** constrain prefix/suffix context
//!   variables threaded through the recursion, using the ⟨/⟩
//!   meta-characters of Algorithm 2.

use std::collections::HashMap;

use automata::{compile_classical, CRegex, CharSet};
use regex_syntax_es6::ast::{AssertionKind, Ast};
use regex_syntax_es6::rewrite::normalize_lazy;
use regex_syntax_es6::Flags;
use strsolve::{BoolVar, Formula, StrVar, Term, VarPool};

use crate::classical::{try_hat_star, user_compile_options};

/// A capture variable `Cᵢ`: a string value plus a definedness flag
/// distinguishing `⊥` from `ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureVar {
    /// The captured substring (meaningful only when defined).
    pub value: StrVar,
    /// True when the capture participated in the match.
    pub defined: BoolVar,
}

impl CaptureVar {
    /// Allocates a fresh capture variable.
    pub fn fresh(pool: &mut VarPool, name: &str) -> CaptureVar {
        CaptureVar {
            value: pool.fresh_str(format!("{name}.value")),
            defined: pool.fresh_bool(format!("{name}.defined")),
        }
    }

    /// The formula `Cᵢ = ⊥`.
    pub fn undefined(&self) -> Formula {
        Formula::bool_is(self.defined, false)
    }

    /// The formula `Cᵢ ≠ ⊥ ∧ Cᵢ = w`.
    pub fn defined_as(&self, w: StrVar) -> Formula {
        Formula::and(vec![
            Formula::bool_is(self.defined, true),
            Formula::eq_var(self.value, w),
        ])
    }

    /// The capture variable shifted into another pool's numbering (see
    /// [`strsolve::VarPool::absorb`]).
    pub fn offset_by(&self, str_offset: u32, bool_offset: u32) -> CaptureVar {
        CaptureVar {
            value: self.value.offset_by(str_offset),
            defined: self.defined.offset_by(bool_offset),
        }
    }
}

/// Configuration for model construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BuildConfig {
    /// Maximum number of explicit copies when expanding `{m,n}`
    /// repetitions (§4.1); beyond it the model falls back to a classical
    /// overapproximation of the repetition.
    pub max_repeat_expansion: u32,
    /// Bound on iteration counts for quantified-backreference contexts
    /// (the `∃m` of Table 3 rows 3–5).
    pub max_backref_copies: u32,
    /// Use the sound (but expensive, bounded) per-iteration model for
    /// mutable backreferences instead of the paper's practical
    /// immutable approximation (Table 3 last row). Ablation only.
    pub sound_mutable_backrefs: bool,
}

impl Default for BuildConfig {
    fn default() -> BuildConfig {
        BuildConfig {
            max_repeat_expansion: 8,
            max_backref_copies: 3,
            sound_mutable_backrefs: false,
        }
    }
}

impl BuildConfig {
    /// A stable fingerprint of the limits, used as part of the model
    /// cache key: models built under different expansion bounds differ
    /// structurally and must not be shared.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish()
    }
}

/// The result of modeling one capturing-language membership constraint.
#[derive(Debug, Clone)]
pub struct RegexModel {
    /// Variable holding the matched word.
    pub word: StrVar,
    /// Canonical capture variables `C₁ … Cₙ` (the API layer adds `C₀`).
    pub captures: Vec<CaptureVar>,
    /// The model formula.
    pub formula: Formula,
    /// False when an overapproximating shortcut beyond the paper's
    /// base overapproximation was taken (large repetition fallback,
    /// assertion in an unsupported position, quantified backreference).
    pub exact: bool,
}

/// Builds the membership model `(w, C₁…Cₙ) ∈ Lc(R)` for a bare pattern
/// (no Algorithm 2 wrapping; anchors resolve against the word edges).
///
/// # Examples
///
/// ```
/// use expose_core::model::{build_membership, BuildConfig};
/// use regex_syntax_es6::parse;
/// use strsolve::{Solver, VarPool};
///
/// let ast = parse("(a|(b))c")?;
/// let mut pool = VarPool::new();
/// let model = build_membership(&ast, Default::default(), &mut pool, &BuildConfig::default());
/// let (outcome, _) = Solver::default().solve(&model.formula);
/// assert!(outcome.is_sat());
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
pub fn build_membership(
    ast: &Ast,
    flags: Flags,
    pool: &mut VarPool,
    cfg: &BuildConfig,
) -> RegexModel {
    let normalized = normalize_lazy(ast);
    let mut builder = ModelBuilder::new(&normalized, flags, pool, cfg.clone());
    let word = builder.pool.fresh_str("w");
    let formula = builder.model(&normalized, word, Some(Vec::new()), Some(Vec::new()));
    RegexModel {
        word,
        captures: builder.captures.clone(),
        formula,
        exact: builder.exact,
    }
}

/// The recursive Table 2/3 translator. See the module docs.
pub struct ModelBuilder<'p> {
    pool: &'p mut VarPool,
    cfg: BuildConfig,
    flags: Flags,
    /// Canonical capture variables, index `i-1` for group `i`.
    captures: Vec<CaptureVar>,
    /// Shadow frames for duplicated copies (innermost last).
    shadow: Vec<HashMap<u32, CaptureVar>>,
    /// Groups whose subtree has been fully modeled at least once
    /// (Definition 2's post-order "closed" test).
    closed: std::collections::HashSet<u32>,
    /// The whole pattern, for resolving backreference group bodies in
    /// overapproximation escape disjuncts.
    root: Ast,
    exact: bool,
}

impl<'p> ModelBuilder<'p> {
    /// Creates a builder for the given (lazy-normalized) AST.
    pub fn new(
        ast: &Ast,
        flags: Flags,
        pool: &'p mut VarPool,
        cfg: BuildConfig,
    ) -> ModelBuilder<'p> {
        let n = ast.capture_count();
        let captures = (1..=n)
            .map(|i| CaptureVar::fresh(pool, &format!("C{i}")))
            .collect();
        ModelBuilder {
            pool,
            cfg,
            flags,
            captures,
            shadow: Vec::new(),
            closed: std::collections::HashSet::new(),
            root: ast.clone(),
            exact: true,
        }
    }

    /// The canonical capture variables.
    pub fn captures(&self) -> &[CaptureVar] {
        &self.captures
    }

    /// True unless an extra overapproximation was taken.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Builds the model formula for `(w, …) ∈ Lc(ast)`.
    ///
    /// `prefix`/`suffix` are the concatenation contexts around `w` in
    /// the overall match word (for anchors and word boundaries);
    /// `None` means the context is unknown (e.g. inside a quantifier).
    pub fn model(
        &mut self,
        ast: &Ast,
        w: StrVar,
        prefix: Option<Vec<Term>>,
        suffix: Option<Vec<Term>>,
    ) -> Formula {
        // Fast path: capture-free, backreference-free, assertion-free
        // subtrees are purely classical (Table 2 base case).
        if self.is_classical(ast) {
            return self.classical_membership(ast, w);
        }
        match ast {
            Ast::Empty => Formula::eq_lit(w, ""),
            Ast::Assertion(kind) => Formula::and(vec![
                Formula::eq_lit(w, ""),
                self.assertion(*kind, prefix, suffix),
            ]),
            Ast::Group { index, ast } => {
                let cap = self.capvar(*index);
                let inner = self.model(ast, w, prefix, suffix);
                self.closed.insert(*index);
                Formula::and(vec![inner, cap.defined_as(w)])
            }
            Ast::NonCapturing(inner) => self.model(inner, w, prefix, suffix),
            Ast::Lookahead { .. } => {
                // A bare lookahead asserts on the suffix context.
                let items = [ast.clone()];
                self.model_concat(&items, w, prefix, suffix)
            }
            Ast::Alt(branches) => self.model_alt(branches, w, prefix, suffix),
            Ast::Concat(items) => {
                let items = items.clone();
                self.model_concat(&items, w, prefix, suffix)
            }
            Ast::Repeat { ast, min, max, .. } => {
                let (ast, min, max) = (ast.clone(), *min, *max);
                self.model_repeat(&ast, min, max, w)
            }
            Ast::Backref(k) => self.model_backref(*k, w),
            // Literal/Dot/Class are classical and handled above.
            leaf => self.classical_membership(leaf, w),
        }
    }

    /// True when the subtree needs no capture or context reasoning.
    /// Lookaheads are *not* classical here: they assert on the suffix
    /// context beyond the subtree's own word variable, so they must go
    /// through [`ModelBuilder::model_concat`]'s context threading — a
    /// fragment-local compilation would cut their scope at the end of
    /// the variable and yield wrong verdicts in both directions.
    fn is_classical(&self, ast: &Ast) -> bool {
        !ast.has_captures() && !ast.has_backref() && !ast.has_assertion() && !ast.has_lookahead()
    }

    fn classical_membership(&mut self, ast: &Ast, w: StrVar) -> Formula {
        let opts = user_compile_options(self.flags);
        match compile_classical(ast, &opts) {
            Ok(re) => Formula::in_re(w, re),
            Err(_) => {
                // Defensive: treat as unconstrained (overapproximate).
                self.exact = false;
                Formula::top()
            }
        }
    }

    // --- Alternation (Table 2 row 1) -----------------------------------

    fn model_alt(
        &mut self,
        branches: &[Ast],
        w: StrVar,
        prefix: Option<Vec<Term>>,
        suffix: Option<Vec<Term>>,
    ) -> Formula {
        let mut alts = Vec::with_capacity(branches.len());
        for (i, branch) in branches.iter().enumerate() {
            let body = self.model(branch, w, prefix.clone(), suffix.clone());
            // Captures of the non-matching branches are undefined.
            let mut undefs = Vec::new();
            for (j, other) in branches.iter().enumerate() {
                if i != j {
                    undefs.push(self.undef_all(other));
                }
            }
            alts.push(Formula::and(std::iter::once(body).chain(undefs).collect()));
        }
        Formula::or(alts)
    }

    /// `∧ Cᵢ = ⊥` over every capture group in the subtree.
    fn undef_all(&mut self, ast: &Ast) -> Formula {
        let indices = ast.capture_indices();
        Formula::and(
            indices
                .into_iter()
                .map(|i| self.capvar(i).undefined())
                .collect(),
        )
    }

    // --- Concatenation, assertions, lookaheads (Table 2) ----------------

    fn model_concat(
        &mut self,
        items: &[Ast],
        w: StrVar,
        prefix: Option<Vec<Term>>,
        suffix: Option<Vec<Term>>,
    ) -> Formula {
        // Allocate a term per consuming item (literals stay literal).
        let mut terms: Vec<Option<Term>> = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            terms.push(match item {
                Ast::Assertion(_) | Ast::Lookahead { .. } => None,
                Ast::Literal(c) if !self.flags.ignore_case => Some(Term::Lit(c.to_string())),
                _ => Some(Term::Var(self.pool.fresh_str(format!("w.{i}")))),
            });
        }
        let consuming: Vec<Term> = terms.iter().flatten().cloned().collect();
        let mut conjuncts = vec![Formula::eq_concat(w, consuming)];

        for (i, item) in items.iter().enumerate() {
            // Context before item i (within this concat) and after it.
            let local_prefix: Vec<Term> = terms[..i].iter().flatten().cloned().collect();
            let local_suffix: Vec<Term> = terms[i + 1..].iter().flatten().cloned().collect();
            let full_prefix = prefix.as_ref().map(|p| {
                let mut v = p.clone();
                v.extend(local_prefix.iter().cloned());
                v
            });
            let full_suffix = suffix.as_ref().map(|s| {
                let mut v = local_suffix.clone();
                v.extend(s.iter().cloned());
                v
            });
            match (&terms[i], item) {
                (None, Ast::Assertion(kind)) => {
                    conjuncts.push(self.assertion(*kind, full_prefix, full_suffix));
                }
                (None, Ast::Lookahead { negative, ast }) => {
                    conjuncts.push(self.lookahead(*negative, ast, full_prefix, full_suffix));
                }
                (Some(Term::Lit(_)), _) => {}
                (Some(Term::Var(v)), _) => {
                    conjuncts.push(self.model(item, *v, full_prefix, full_suffix));
                }
                (None, _) => unreachable!("only assertions have no term"),
            }
        }
        Formula::and(conjuncts)
    }

    fn assertion(
        &mut self,
        kind: AssertionKind,
        prefix: Option<Vec<Term>>,
        suffix: Option<Vec<Term>>,
    ) -> Formula {
        let multiline = self.flags.multiline;
        match kind {
            AssertionKind::StartAnchor => match prefix {
                None => {
                    self.exact = false;
                    Formula::top()
                }
                Some(parts) if parts.is_empty() => Formula::top(),
                Some(parts) => {
                    let (p, def) = self.concat_var("anchor.pre", parts);
                    // p ends with ⟨ (or a line terminator under `m`),
                    // or p is empty (true word start).
                    let mut enders = CharSet::single(crate::meta::INPUT_START);
                    if multiline {
                        enders = enders.union(&line_terminators());
                    }
                    let ends_with = CRegex::concat(vec![
                        CRegex::star(CRegex::set(CharSet::any())),
                        CRegex::set(enders),
                    ]);
                    Formula::and(vec![
                        def,
                        Formula::or(vec![Formula::eq_lit(p, ""), Formula::in_re(p, ends_with)]),
                    ])
                }
            },
            AssertionKind::EndAnchor => match suffix {
                None => {
                    self.exact = false;
                    Formula::top()
                }
                Some(parts) if parts.is_empty() => Formula::top(),
                Some(parts) => {
                    let (s, def) = self.concat_var("anchor.post", parts);
                    let mut starters = CharSet::single(crate::meta::INPUT_END);
                    if multiline {
                        starters = starters.union(&line_terminators());
                    }
                    let starts_with = CRegex::concat(vec![
                        CRegex::set(starters),
                        CRegex::star(CRegex::set(CharSet::any())),
                    ]);
                    Formula::and(vec![
                        def,
                        Formula::or(vec![Formula::eq_lit(s, ""), Formula::in_re(s, starts_with)]),
                    ])
                }
            },
            AssertionKind::WordBoundary | AssertionKind::NotWordBoundary => {
                let (Some(pre), Some(post)) = (prefix, suffix) else {
                    self.exact = false;
                    return Formula::top();
                };
                let (p, p_def) = self.concat_var("wb.pre", pre);
                let (s, s_def) = self.concat_var("wb.post", post);
                let word = CharSet::from_class(&regex_syntax_es6::class::ClassSet::word());
                let non_word = word.complement();
                let any_star = CRegex::star(CRegex::set(CharSet::any()));
                let ends_nonword =
                    CRegex::concat(vec![any_star.clone(), CRegex::set(non_word.clone())]);
                let ends_word = CRegex::concat(vec![any_star.clone(), CRegex::set(word.clone())]);
                let starts_word = CRegex::concat(vec![CRegex::set(word), any_star.clone()]);
                let starts_nonword = CRegex::concat(vec![CRegex::set(non_word), any_star]);
                if kind == AssertionKind::WordBoundary {
                    // Table 2: boundary either way.
                    let disj = Formula::or(vec![
                        Formula::and(vec![
                            Formula::or(vec![
                                Formula::in_re(p, ends_nonword),
                                Formula::eq_lit(p, ""),
                            ]),
                            Formula::in_re(s, starts_word),
                        ]),
                        Formula::and(vec![
                            Formula::in_re(p, ends_word),
                            Formula::or(vec![
                                Formula::in_re(s, starts_nonword),
                                Formula::eq_lit(s, ""),
                            ]),
                        ]),
                    ]);
                    Formula::and(vec![p_def, s_def, disj])
                } else {
                    // Table 2 non-word boundary: the dual.
                    Formula::and(vec![
                        p_def,
                        s_def,
                        Formula::or(vec![
                            Formula::and(vec![
                                Formula::not_in_re(p, ends_nonword),
                                Formula::ne_lit(p, ""),
                            ]),
                            Formula::not_in_re(s, starts_word),
                        ]),
                        Formula::or(vec![
                            Formula::not_in_re(p, ends_word),
                            Formula::and(vec![
                                Formula::not_in_re(s, starts_nonword),
                                Formula::ne_lit(s, ""),
                            ]),
                        ]),
                    ])
                }
            }
        }
    }

    fn lookahead(
        &mut self,
        negative: bool,
        inner: &Ast,
        _prefix: Option<Vec<Term>>,
        suffix: Option<Vec<Term>>,
    ) -> Formula {
        // Unknown suffix context (inside a quantifier or another
        // lookahead's head): the remaining text is not represented by
        // any term, so the assertion cannot be stated. Treating it as
        // empty — the old behaviour — made the model too *strong*
        // (`(?=b)` with unknown context became `⊥`), risking unsound
        // Unsat; `⊤` plus the inexactness mark is the sound weakening.
        let Some(suffix_terms) = suffix else {
            self.exact = false;
            return Formula::top();
        };
        let (la, la_def) = self.concat_var("la", suffix_terms);
        if !negative {
            // Table 2: (la, caps) ∈ Lc(t₁.*): t₁ matches a prefix of the
            // remaining text; its captures persist. The head's own
            // trailing lookaheads scope into the rest variable.
            let u = self.pool.fresh_str("la.head");
            let v = self.pool.fresh_str("la.rest");
            let inner_model = self.model(inner, u, None, Some(vec![Term::Var(v)]));
            Formula::and(vec![
                la_def,
                Formula::eq_concat(la, vec![Term::Var(u), Term::Var(v)]),
                inner_model,
                Formula::in_re(v, CRegex::star(CRegex::set(CharSet::any()))),
            ])
        } else {
            // Negative lookahead: la ∉ L(t₁.*); inner captures reset.
            let undefs = self.undef_all(inner);
            let opts = user_compile_options(self.flags);
            let assertion = match automata::compile_classical_into(
                &regex_syntax_es6::rewrite::strip_captures(inner),
                &opts,
                CRegex::star(CRegex::set(CharSet::any())),
            ) {
                Ok(lang) => Formula::not_in_re(la, lang),
                Err(_) => {
                    // Backreference inside a negative lookahead: negate
                    // the structural model (§4.4). The split variables
                    // stay existential under the negation, so this only
                    // requires *one* failing layout — a (sound)
                    // overapproximation of "no prefix matches", and an
                    // extra weakening beyond the base model.
                    self.exact = false;
                    let u = self.pool.fresh_str("nla.head");
                    let v = self.pool.fresh_str("nla.rest");
                    let inner_model = self.model(inner, u, None, None);
                    crate::negate::nnf_negate(&Formula::and(vec![
                        Formula::eq_concat(la, vec![Term::Var(u), Term::Var(v)]),
                        inner_model,
                    ]))
                }
            };
            Formula::and(vec![la_def, undefs, assertion])
        }
    }

    /// Binds a fresh variable to the concatenation of `parts`,
    /// returning the variable and its defining constraint.
    fn concat_var(&mut self, name: &str, parts: Vec<Term>) -> (StrVar, Formula) {
        let v = self.pool.fresh_str(name);
        let def = if parts.is_empty() {
            Formula::eq_lit(v, "")
        } else {
            Formula::eq_concat(v, parts)
        };
        (v, def)
    }

    // --- Quantification (Table 2 row 3, §4.1, Table 3 rows 3–5) ---------

    fn model_repeat(&mut self, body: &Ast, min: u32, max: Option<u32>, w: StrVar) -> Formula {
        if body.has_backref() {
            return self.model_backref_repeat(body, min, max, w);
        }
        match (min, max) {
            // t* — the Table 2 quantification rule.
            (0, None) => self.model_star(body, w),
            // t? → t|ε.
            (0, Some(1)) => {
                let matched = self.model(body, w, None, None);
                let skipped = Formula::and(vec![Formula::eq_lit(w, ""), self.undef_all(body)]);
                Formula::or(vec![matched, skipped])
            }
            // t+ → t*t (§4.1): captures come from the final copy.
            (1, None) => {
                let w1 = self.pool.fresh_str("plus.star");
                let w2 = self.pool.fresh_str("plus.last");
                let star = self.hat_star_constraint(body, w1);
                let last = self.model(body, w2, None, None);
                Formula::and(vec![
                    Formula::eq_concat(w, vec![Term::Var(w1), Term::Var(w2)]),
                    star,
                    last,
                ])
            }
            // t{m,} → m-1 shadow copies, then t+.
            (m, None) => {
                let m = m.min(self.cfg.max_repeat_expansion + 1);
                let mut terms = Vec::new();
                let mut conjuncts = Vec::new();
                for c in 0..m.saturating_sub(1) {
                    let x = self.pool.fresh_str(format!("rep.{c}"));
                    terms.push(Term::Var(x));
                    let f = self.model_shadow_copy(body, x);
                    conjuncts.push(f);
                }
                let w1 = self.pool.fresh_str("rep.star");
                let w2 = self.pool.fresh_str("rep.last");
                terms.push(Term::Var(w1));
                terms.push(Term::Var(w2));
                conjuncts.push(self.hat_star_constraint(body, w1));
                let last = self.model(body, w2, None, None);
                conjuncts.push(last);
                conjuncts.insert(0, Formula::eq_concat(w, terms));
                Formula::and(conjuncts)
            }
            // t{m,n} → tⁿ | … | tᵐ (§4.1).
            (m, Some(n)) => {
                if n.saturating_sub(m) > self.cfg.max_repeat_expansion || n > 16 {
                    // Classical fallback for large repetitions. Only
                    // sound for lookahead-free bodies: a per-iteration
                    // lookahead compiled fragment-locally can make the
                    // membership too strong (unsound Unsat), so those
                    // weaken to ⊤ instead.
                    self.exact = false;
                    if body.has_lookahead() {
                        return Formula::top();
                    }
                    let opts = user_compile_options(self.flags);
                    return match compile_classical(
                        &regex_syntax_es6::rewrite::strip_captures(body),
                        &opts,
                    ) {
                        Ok(re) => Formula::in_re(w, CRegex::repeat(re, m, Some(n))),
                        Err(_) => Formula::top(),
                    };
                }
                let mut branches = Vec::new();
                for j in (m..=n).rev() {
                    branches.push(self.repeat_branch(body, j, w));
                }
                Formula::or(branches)
            }
        }
    }

    /// One alternate of the §4.1 expansion: exactly `j` copies, with the
    /// canonical captures bound by the last copy.
    fn repeat_branch(&mut self, body: &Ast, j: u32, w: StrVar) -> Formula {
        if j == 0 {
            return Formula::and(vec![Formula::eq_lit(w, ""), self.undef_all(body)]);
        }
        let mut terms = Vec::new();
        let mut conjuncts = Vec::new();
        for c in 0..j - 1 {
            let x = self.pool.fresh_str(format!("copy.{c}"));
            terms.push(Term::Var(x));
            let f = self.model_shadow_copy(body, x);
            conjuncts.push(f);
        }
        let last = self.pool.fresh_str("copy.last");
        terms.push(Term::Var(last));
        let f = self.model(body, last, None, None);
        conjuncts.push(f);
        conjuncts.insert(0, Formula::eq_concat(w, terms));
        Formula::and(conjuncts)
    }

    /// Models one *shadow* copy: capture groups bind fresh throwaway
    /// variables (they correspond to non-final copies of §4.1).
    fn model_shadow_copy(&mut self, body: &Ast, w: StrVar) -> Formula {
        let frame: HashMap<u32, CaptureVar> = body
            .capture_indices()
            .into_iter()
            .map(|i| (i, CaptureVar::fresh(self.pool, &format!("C{i}.shadow"))))
            .collect();
        self.shadow.push(frame);
        let f = self.model(body, w, None, None);
        self.shadow.pop();
        f
    }

    /// The Table 2 star rule.
    fn model_star(&mut self, body: &Ast, w: StrVar) -> Formula {
        let w1 = self.pool.fresh_str("star.head");
        let w2 = self.pool.fresh_str("star.last");
        let head = self.hat_star_constraint(body, w1);
        let last_model = self.model(body, w2, None, None);
        let undefs = self.undef_all(body);
        let undefs2 = undefs.clone();
        Formula::and(vec![
            Formula::eq_concat(w, vec![Term::Var(w1), Term::Var(w2)]),
            head,
            // (w2, C…) ∈ Lc(t₁|ε)
            Formula::or(vec![
                last_model,
                Formula::and(vec![Formula::eq_lit(w2, ""), undefs]),
            ]),
            // w2 = ε ⟹ w1 = ε ∧ C = ⊥
            Formula::or(vec![
                Formula::ne_lit(w2, ""),
                Formula::and(vec![Formula::eq_lit(w1, ""), undefs2]),
            ]),
        ])
    }

    /// `w1 ∈ L(t̂₁*)` when computable; `⊤` (inexact) otherwise.
    fn hat_star_constraint(&mut self, body: &Ast, w1: StrVar) -> Formula {
        match try_hat_star(body, self.flags) {
            Some(re) => Formula::in_re(w1, re),
            None => {
                self.exact = false;
                Formula::top()
            }
        }
    }

    // --- Backreferences (Table 3) ---------------------------------------

    fn model_backref(&mut self, k: u32, w: StrVar) -> Formula {
        if !self.closed.contains(&k) {
            // Empty type (Definition 2): forward or self reference.
            return Formula::eq_lit(w, "");
        }
        let cap = self.capvar(k);
        Formula::or(vec![
            Formula::and(vec![cap.undefined(), Formula::eq_lit(w, "")]),
            cap.defined_as(w),
        ])
    }

    /// Quantified contexts containing backreferences: the bounded
    /// expansion realizing Table 3 rows 3–5.
    ///
    /// In the default (paper) configuration every iteration is the *same*
    /// word (the immutable approximation, last row of Table 3): `w = xᵐ`
    /// with one shared copy variable `x`. With
    /// [`BuildConfig::sound_mutable_backrefs`], each iteration gets its
    /// own variable and shadow captures (sound up to the iteration
    /// bound).
    fn model_backref_repeat(
        &mut self,
        body: &Ast,
        min: u32,
        max: Option<u32>,
        w: StrVar,
    ) -> Formula {
        self.exact = false; // quantified backreference (§5.4)
        let hi = max
            .unwrap_or(u32::MAX)
            .min(min.saturating_add(self.cfg.max_backref_copies));
        let mut branches = Vec::new();
        for m in min..=hi {
            if m == 0 {
                branches.push(Formula::and(vec![
                    Formula::eq_lit(w, ""),
                    self.undef_all(body),
                ]));
                continue;
            }
            if self.cfg.sound_mutable_backrefs {
                // Distinct iterations with per-iteration shadow captures;
                // the final iteration binds the canonical captures.
                let mut terms = Vec::new();
                let mut conjuncts = Vec::new();
                for c in 0..m - 1 {
                    let x = self.pool.fresh_str(format!("bref.{c}"));
                    terms.push(Term::Var(x));
                    let f = self.model_shadow_copy(body, x);
                    conjuncts.push(f);
                }
                let last = self.pool.fresh_str("bref.last");
                terms.push(Term::Var(last));
                let f = self.model(body, last, None, None);
                conjuncts.push(f);
                conjuncts.insert(0, Formula::eq_concat(w, terms));
                branches.push(Formula::and(conjuncts));
            } else {
                // Same-value expansion: all m iterations share one word.
                let x = self.pool.fresh_str("bref.rep");
                let f = self.model(body, x, None, None);
                branches.push(Formula::and(vec![
                    Formula::eq_concat(w, vec![Term::Var(x); m as usize]),
                    f,
                ]));
            }
        }
        // Escape disjunct: both the same-value restriction and the
        // iteration-count truncation *under*-approximate (the §4.3
        // example `^((a|b)\2)+$` matches "aabb" with different words
        // per iteration), and an under-approximating branch in a
        // positive model makes Unsat unsound — the differential
        // fuzzer's corpus pins that exact case. Admit every word the
        // true language could possibly produce (iterated
        // overapproximation of the body, captures unconstrained); the
        // CEGAR oracle rejects or repairs spurious witnesses.
        let truncated = max.is_none_or(|n| n > hi);
        if !self.cfg.sound_mutable_backrefs || truncated {
            let over = crate::classical::overapprox_fragment(body, &self.root, self.flags);
            branches.push(Formula::in_re(w, CRegex::repeat(over, min, None)));
        }
        Formula::or(branches)
    }

    // --- Capture variable resolution -------------------------------------

    /// Resolves group `index` through shadow frames to its variable.
    fn capvar(&mut self, index: u32) -> CaptureVar {
        for frame in self.shadow.iter().rev() {
            if let Some(cap) = frame.get(&index) {
                return *cap;
            }
        }
        self.captures[(index - 1) as usize]
    }
}

fn line_terminators() -> CharSet {
    CharSet::from_ranges(vec![(0x0A, 0x0A), (0x0D, 0x0D), (0x2028, 0x2029)])
}

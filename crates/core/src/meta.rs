//! The ⟨/⟩ input-boundary meta-characters of Algorithm 2.
//!
//! The paper marks the start and end of the subject string with two
//! meta-characters so that anchors (`^`, `$`) and the sticky `lastIndex`
//! logic become ordinary string constraints (§6.1). We use two private
//! use area code points that no surveyed regex feature class (`\w`,
//! `\d`, `\s`) contains.

use automata::CharSet;

/// `⟨` — marks the start of input.
pub const INPUT_START: char = '\u{E000}';

/// `⟩` — marks the end of input.
pub const INPUT_END: char = '\u{E001}';

/// The set `{⟨, ⟩}`.
pub fn meta_set() -> CharSet {
    CharSet::single(INPUT_START).union(&CharSet::single(INPUT_END))
}

/// Wraps a subject string in the meta-characters:
/// `input′ = ⟨ + input + ⟩` (Algorithm 2 line 1).
pub fn wrap_input(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + 2);
    out.push(INPUT_START);
    out.push_str(input);
    out.push(INPUT_END);
    out
}

/// Removes the meta-characters from a solver witness (Algorithm 2
/// line 9).
pub fn strip_meta(word: &str) -> String {
    word.chars()
        .filter(|&c| c != INPUT_START && c != INPUT_END)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_and_strip_round_trip() {
        let wrapped = wrap_input("hello");
        assert_eq!(wrapped.chars().count(), 7);
        assert_eq!(strip_meta(&wrapped), "hello");
    }

    #[test]
    fn meta_chars_are_not_word_chars() {
        let word = regex_syntax_es6::class::ClassSet::word();
        assert!(!word.contains(INPUT_START));
        assert!(!word.contains(INPUT_END));
        let space = regex_syntax_es6::class::ClassSet::space();
        assert!(!space.contains(INPUT_START));
        let digit = regex_syntax_es6::class::ClassSet::digit();
        assert!(!digit.contains(INPUT_END));
    }

    #[test]
    fn meta_set_contains_both() {
        let set = meta_set();
        assert!(set.contains(INPUT_START));
        assert!(set.contains(INPUT_END));
        assert!(!set.contains('a'));
    }
}

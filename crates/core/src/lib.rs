//! Sound ES6 regex semantics for dynamic symbolic execution — the
//! paper's core contribution.
//!
//! This crate reproduces the system of *Sound Regular Expression
//! Semantics for Dynamic Symbolic Execution of JavaScript* (PLDI 2019):
//!
//! * [`model`] — the capturing-language models of Tables 2 and 3:
//!   ES6 regexes translate to string constraints plus classical regular
//!   membership, with capture variables distinguishing `⊥` from `ε`;
//! * [`negate`] — the non-membership models of §4.4;
//! * [`cegar`] — Algorithm 1, the counterexample-guided abstraction
//!   refinement that restores matching precedence (greediness) using the
//!   concrete ES6 matcher as oracle;
//! * [`api`] — Algorithm 2, the symbolic `RegExp.exec`/`test` models
//!   with the ⟨/⟩ input markers ([`meta`]) and flag handling;
//! * [`config`] — the §7.3 support levels used by the evaluation;
//! * [`cache`] — the cross-query model cache that amortizes model
//!   construction over the thousands of times DSE re-encounters the
//!   same regex.
//!
//! # Examples
//!
//! Find an input on which `/^(a+)(b+)$/` matches with a non-empty
//! second group, with engine-faithful (greedy) capture values:
//!
//! ```
//! use expose_core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
//! use regex_syntax_es6::Regex;
//! use strsolve::{Formula, VarPool};
//!
//! let regex = Regex::parse_literal("/^(a+)(b+)$/")?;
//! let mut pool = VarPool::new();
//! let constraint = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
//! let result = CegarSolver::default().solve(&Formula::top(), &[constraint.clone()]);
//! let model = result.outcome.model().expect("satisfiable");
//! let input = model.get_str(constraint.input).expect("assigned");
//! let mut oracle = es6_matcher::RegExp::from_regex(constraint.regex.clone());
//! assert!(oracle.test(input));
//! # Ok::<(), regex_syntax_es6::ParseError>(())
//! ```

pub mod api;
pub mod cache;
pub mod cegar;
pub mod classical;
pub mod config;
pub mod meta;
pub mod model;
pub mod negate;

pub use api::{build_match_model, CapturingConstraint};
pub use cache::{CacheStats, ModelCache};
pub use cegar::{CegarCache, CegarResult, CegarSolver, CegarStats};
pub use config::SupportLevel;
pub use model::{BuildConfig, CaptureVar, ModelBuilder, RegexModel};

//! Cross-query regex model caching.
//!
//! Building an Algorithm 2 model ([`crate::api::build_match_model`]) is
//! pure recursion over the regex AST — expensive for patterns with
//! quantifier expansion, and repeated endlessly by DSE: every trace of
//! a program applies the *same* regexes, and every clause flip along a
//! trace rebuilds their models from scratch. [`ModelCache`] builds each
//! distinct `(pattern, flags, polarity, support level, build config)`
//! combination once, against a private [`VarPool`], and *rebases* the
//! cached constraint into each asking query's pool by offsetting its
//! variables ([`strsolve::VarPool::absorb`] +
//! [`CapturingConstraint::offset_vars`]).
//!
//! Rebasing makes a hit observationally identical to a fresh build:
//! `build_match_model` allocates pool variables strictly sequentially,
//! so shifting the privately-built model by the asking pool's current
//! size yields exactly the constraint a direct build would have
//! produced (the differential tests in `tests/cache_differential.rs`
//! assert formula-level equality).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use regex_syntax_es6::{Flags, Regex};
use strsolve::{Lru, VarPool};

use crate::api::{build_match_model, CapturingConstraint};
use crate::config::SupportLevel;
use crate::model::BuildConfig;

/// The cache key: everything the built model depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ModelKey {
    /// The pattern source text.
    source: String,
    /// The flag set, packed.
    flags: u8,
    /// Match (`∈`) or non-match (`∉`) polarity.
    positive: bool,
    /// The support level the query runs under (kept in the key so an
    /// engine comparing levels side by side never shares entries
    /// across them).
    support: SupportLevel,
    /// [`BuildConfig::fingerprint`].
    build: u64,
}

pub(crate) fn pack_flags(flags: Flags) -> u8 {
    u8::from(flags.global)
        | u8::from(flags.ignore_case) << 1
        | u8::from(flags.multiline) << 2
        | u8::from(flags.dot_all) << 3
        | u8::from(flags.unicode) << 4
        | u8::from(flags.sticky) << 5
}

/// A cached model: the constraint plus the private pool it was built
/// against (absorbed into the asking pool on every use).
#[derive(Debug)]
struct Entry {
    pool: VarPool,
    constraint: CapturingConstraint,
}

/// Hit/miss counters of a cache, as a point-in-time snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built a fresh model.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (`0` when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shared, thread-safe, capacity-bounded cache of built regex models,
/// shared across queries, traces, and batch jobs.
///
/// # Examples
///
/// ```
/// use expose_core::{cache::ModelCache, model::BuildConfig, SupportLevel};
/// use regex_syntax_es6::Regex;
/// use strsolve::VarPool;
///
/// let cache = ModelCache::new(64);
/// let regex = Regex::parse_literal("/^a+(b)?$/")?;
/// let cfg = BuildConfig::default();
/// let mut pool = VarPool::new();
/// let (first, hit1) =
///     cache.get_or_build(&regex, true, SupportLevel::Refinement, &mut pool, &cfg);
/// let (second, hit2) =
///     cache.get_or_build(&regex, true, SupportLevel::Refinement, &mut pool, &cfg);
/// assert!(!hit1 && hit2);
/// // Distinct uses get distinct variables, same structure.
/// assert_ne!(first.input, second.input);
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug)]
pub struct ModelCache {
    entries: Mutex<Lru<ModelKey, Arc<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelCache {
    /// Creates a cache holding at most `capacity` built models
    /// (`0` disables caching; lookups then always build fresh).
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache::with_byte_budget(capacity, 0)
    }

    /// Creates a cache additionally bounded by an approximate byte
    /// budget over resident models (`0` = unlimited) — the backstop for
    /// long-lived service sessions whose entry count alone would let
    /// large models accumulate.
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> ModelCache {
        ModelCache {
            entries: Mutex::new(Lru::with_byte_budget(capacity, byte_budget)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn byte_budget(&self) -> usize {
        self.entries.lock().byte_budget()
    }

    /// Approximate bytes held by resident models.
    pub fn bytes(&self) -> usize {
        self.entries.lock().bytes()
    }

    /// Models evicted so far (capacity- or budget-driven).
    pub fn evictions(&self) -> u64 {
        self.entries.lock().evictions()
    }

    /// Returns the Algorithm 2 model for `regex` with the given
    /// polarity, rebased into `pool`, building and caching it on a
    /// miss. The boolean is `true` on a cache hit.
    pub fn get_or_build(
        &self,
        regex: &Regex,
        positive: bool,
        support: SupportLevel,
        pool: &mut VarPool,
        cfg: &BuildConfig,
    ) -> (CapturingConstraint, bool) {
        let key = ModelKey {
            source: regex.source.clone(),
            flags: pack_flags(regex.flags),
            positive,
            support,
            build: cfg.fingerprint(),
        };
        let cached = self.entries.lock().get(&key).cloned();
        if let Some(entry) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let (s, b) = pool.absorb(&entry.pool);
            return (entry.constraint.offset_vars(s, b), true);
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut private = VarPool::new();
        let constraint = build_match_model(regex, positive, &mut private, cfg);
        let (s, b) = pool.absorb(&private);
        let rebased = constraint.offset_vars(s, b);
        // Approximate resident size: the model formula dominates; pool
        // variable names and the pattern source are counted coarsely.
        let weight = constraint.formula.approx_bytes()
            + key.source.len()
            + (private.str_count() + private.bool_count()) * 24;
        self.entries.lock().insert_weighted(
            key,
            Arc::new(Entry {
                pool: private,
                constraint,
            }),
            weight,
        );
        (rebased, false)
    }

    /// Point-in-time hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when no model is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strsolve::Solver;

    fn regex(literal: &str) -> Regex {
        Regex::parse_literal(literal).expect("literal")
    }

    #[test]
    fn hit_is_identical_to_fresh_build() {
        let cache = ModelCache::new(16);
        let re = regex("/^<([a-z]+)>$/");
        let cfg = BuildConfig::default();

        // Prime the cache from one pool.
        let mut warm = VarPool::new();
        cache.get_or_build(&re, true, SupportLevel::Refinement, &mut warm, &cfg);

        // A hit from a second pool must equal a direct build into an
        // identically-sized pool, formula and variables included.
        let mut pool_hit = VarPool::new();
        pool_hit.fresh_str("noise");
        let (from_cache, hit) =
            cache.get_or_build(&re, true, SupportLevel::Refinement, &mut pool_hit, &cfg);
        assert!(hit);

        let mut pool_fresh = VarPool::new();
        pool_fresh.fresh_str("noise");
        let fresh = build_match_model(&re, true, &mut pool_fresh, &cfg);
        assert_eq!(from_cache.formula, fresh.formula);
        assert_eq!(from_cache.input, fresh.input);
        assert_eq!(from_cache.wrapped, fresh.wrapped);
        assert_eq!(from_cache.captures, fresh.captures);
        assert_eq!(pool_hit.str_count(), pool_fresh.str_count());
        assert_eq!(pool_hit.bool_count(), pool_fresh.bool_count());
    }

    #[test]
    fn polarity_and_flags_split_entries() {
        let cache = ModelCache::new(16);
        let cfg = BuildConfig::default();
        let mut pool = VarPool::new();
        cache.get_or_build(
            &regex("/a+/"),
            true,
            SupportLevel::Refinement,
            &mut pool,
            &cfg,
        );
        cache.get_or_build(
            &regex("/a+/"),
            false,
            SupportLevel::Refinement,
            &mut pool,
            &cfg,
        );
        cache.get_or_build(
            &regex("/a+/i"),
            true,
            SupportLevel::Refinement,
            &mut pool,
            &cfg,
        );
        cache.get_or_build(
            &regex("/a+/"),
            true,
            SupportLevel::Captures,
            &mut pool,
            &cfg,
        );
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn byte_budget_bounds_resident_models() {
        let unbounded = ModelCache::new(64);
        let cfg = BuildConfig::default();
        let mut pool = VarPool::new();
        let patterns: Vec<String> = (0..6).map(|i| format!("/^[a-z]+[0-9]+x{i}$/")).collect();
        for p in &patterns {
            unbounded.get_or_build(&regex(p), true, SupportLevel::Refinement, &mut pool, &cfg);
        }
        assert_eq!(unbounded.evictions(), 0);
        // A budget that fits only part of the set must evict, and the
        // resident total must stay within it.
        let budget = unbounded.bytes() / 2;
        let bounded = ModelCache::with_byte_budget(64, budget);
        for p in &patterns {
            bounded.get_or_build(&regex(p), true, SupportLevel::Refinement, &mut pool, &cfg);
        }
        assert!(bounded.bytes() <= budget);
        assert!(bounded.evictions() > 0);
        assert!(bounded.len() < patterns.len());
    }

    #[test]
    fn zero_capacity_always_builds() {
        let cache = ModelCache::new(0);
        let cfg = BuildConfig::default();
        let mut pool = VarPool::new();
        let re = regex("/b+/");
        let (c1, h1) = cache.get_or_build(&re, true, SupportLevel::Refinement, &mut pool, &cfg);
        let (_c2, h2) = cache.get_or_build(&re, true, SupportLevel::Refinement, &mut pool, &cfg);
        assert!(!h1 && !h2);
        assert!(cache.is_empty());
        // Still usable: the built model solves.
        let (outcome, _) = Solver::default().solve(&c1.formula);
        assert!(outcome.is_sat());
    }

    #[test]
    fn cached_model_survives_solving_from_two_pools() {
        let cache = ModelCache::new(16);
        let cfg = BuildConfig::default();
        let re = regex("/^go+d$/");
        for padding in [0usize, 7] {
            let mut pool = VarPool::new();
            for i in 0..padding {
                pool.fresh_str(format!("pad{i}"));
            }
            let (c, _) = cache.get_or_build(&re, true, SupportLevel::Refinement, &mut pool, &cfg);
            let (outcome, _) = Solver::default().solve(&c.formula);
            let model = outcome.model().expect("sat");
            let input = model.get_str(c.input).expect("assigned");
            let mut oracle = es6_matcher::RegExp::from_regex(c.regex.clone());
            assert!(oracle.test(input), "witness {input:?} must match");
        }
        assert_eq!(cache.stats().hits, 1);
    }
}

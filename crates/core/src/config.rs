//! Regex support levels for the evaluation (§7.3, Table 7).

use regex_syntax_es6::Regex;

/// How much regex support the DSE engine applies — the four
/// configurations compared in Table 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SupportLevel {
    /// Execute all regex methods concretely (concretize arguments and
    /// results) — the baseline.
    Concrete,
    /// Model regex matching (including word boundaries and lookaheads)
    /// but concretize capture-group accesses and backreferences.
    Modeling,
    /// Additionally model capture groups and backreferences.
    Captures,
    /// Additionally run the CEGAR matching-precedence refinement —
    /// the paper's full system.
    Refinement,
}

impl SupportLevel {
    /// All levels, in Table 7 order.
    pub const ALL: [SupportLevel; 4] = [
        SupportLevel::Concrete,
        SupportLevel::Modeling,
        SupportLevel::Captures,
        SupportLevel::Refinement,
    ];

    /// True when regex operations are modeled symbolically at all.
    pub fn models_regex(self) -> bool {
        self != SupportLevel::Concrete
    }

    /// True when capture groups are modeled.
    pub fn models_captures(self) -> bool {
        matches!(self, SupportLevel::Captures | SupportLevel::Refinement)
    }

    /// True when the CEGAR refinement runs.
    pub fn refines(self) -> bool {
        self == SupportLevel::Refinement
    }

    /// The minimum support level at which `regex` is modeled fully,
    /// rather than concretized: [`SupportLevel::Modeling`] when the
    /// pattern has neither capture groups nor backreferences (its word
    /// language decides everything), [`SupportLevel::Captures`]
    /// otherwise. This is a property of the *regex*; whether the CEGAR
    /// refinement additionally runs ([`SupportLevel::Refinement`]) is a
    /// property of the engine configuration. The differential fuzzer
    /// buckets its Unknown rate by this classification.
    pub fn required_for(regex: &Regex) -> SupportLevel {
        if regex.ast.has_captures() || regex.ast.has_backref() {
            SupportLevel::Captures
        } else {
            SupportLevel::Modeling
        }
    }

    /// The Table 7 row label.
    pub fn label(self) -> &'static str {
        match self {
            SupportLevel::Concrete => "Concrete Regular Expressions",
            SupportLevel::Modeling => "+ Modeling RegEx",
            SupportLevel::Captures => "+ Captures & Backreferences",
            SupportLevel::Refinement => "+ Refinement",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_capability() {
        assert!(SupportLevel::Concrete < SupportLevel::Refinement);
        assert!(!SupportLevel::Concrete.models_regex());
        assert!(SupportLevel::Modeling.models_regex());
        assert!(!SupportLevel::Modeling.models_captures());
        assert!(SupportLevel::Captures.models_captures());
        assert!(!SupportLevel::Captures.refines());
        assert!(SupportLevel::Refinement.refines());
    }

    #[test]
    fn required_level_classifies_by_captures() {
        let classical = Regex::parse_literal("/^[a-z]+(?=x)$/").expect("literal");
        assert_eq!(
            SupportLevel::required_for(&classical),
            SupportLevel::Modeling
        );
        let captures = Regex::parse_literal("/(a+)b/").expect("literal");
        assert_eq!(
            SupportLevel::required_for(&captures),
            SupportLevel::Captures
        );
        let backrefs = Regex::parse_literal(r"/(a)\1/").expect("literal");
        assert_eq!(
            SupportLevel::required_for(&backrefs),
            SupportLevel::Captures
        );
    }

    #[test]
    fn labels_match_table7() {
        assert_eq!(SupportLevel::ALL.len(), 4);
        assert_eq!(SupportLevel::Refinement.label(), "+ Refinement");
    }
}

//! Regex support levels for the evaluation (§7.3, Table 7).

/// How much regex support the DSE engine applies — the four
/// configurations compared in Table 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SupportLevel {
    /// Execute all regex methods concretely (concretize arguments and
    /// results) — the baseline.
    Concrete,
    /// Model regex matching (including word boundaries and lookaheads)
    /// but concretize capture-group accesses and backreferences.
    Modeling,
    /// Additionally model capture groups and backreferences.
    Captures,
    /// Additionally run the CEGAR matching-precedence refinement —
    /// the paper's full system.
    Refinement,
}

impl SupportLevel {
    /// All levels, in Table 7 order.
    pub const ALL: [SupportLevel; 4] = [
        SupportLevel::Concrete,
        SupportLevel::Modeling,
        SupportLevel::Captures,
        SupportLevel::Refinement,
    ];

    /// True when regex operations are modeled symbolically at all.
    pub fn models_regex(self) -> bool {
        self != SupportLevel::Concrete
    }

    /// True when capture groups are modeled.
    pub fn models_captures(self) -> bool {
        matches!(self, SupportLevel::Captures | SupportLevel::Refinement)
    }

    /// True when the CEGAR refinement runs.
    pub fn refines(self) -> bool {
        self == SupportLevel::Refinement
    }

    /// The Table 7 row label.
    pub fn label(self) -> &'static str {
        match self {
            SupportLevel::Concrete => "Concrete Regular Expressions",
            SupportLevel::Modeling => "+ Modeling RegEx",
            SupportLevel::Captures => "+ Captures & Backreferences",
            SupportLevel::Refinement => "+ Refinement",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_capability() {
        assert!(SupportLevel::Concrete < SupportLevel::Refinement);
        assert!(!SupportLevel::Concrete.models_regex());
        assert!(SupportLevel::Modeling.models_regex());
        assert!(!SupportLevel::Modeling.models_captures());
        assert!(SupportLevel::Captures.models_captures());
        assert!(!SupportLevel::Captures.refines());
        assert!(SupportLevel::Refinement.refines());
    }

    #[test]
    fn labels_match_table7() {
        assert_eq!(SupportLevel::ALL.len(), 4);
        assert_eq!(SupportLevel::Refinement.label(), "+ Refinement");
    }
}

//! Soundness tests for the capturing-language models (§5.4): the
//! positive model must overapproximate the true capturing language
//! (every concretely matching input satisfies the model), and CEGAR
//! answers must be engine-exact.

use es6_matcher::RegExp;
use expose_core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
use regex_syntax_es6::Regex;
use strsolve::{Formula, Outcome, Solver, VarPool};

/// For inputs that concretely match, the positive model conjoined with
/// `input = value` must be satisfiable (overapproximation, §5.4).
fn assert_model_admits(literal: &str, matching_inputs: &[&str]) {
    let regex = Regex::parse_literal(literal).expect("literal");
    for input in matching_inputs {
        let mut oracle = RegExp::from_regex(regex.clone());
        assert!(
            oracle.test(input),
            "test setup: {input:?} must match {literal}"
        );
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
        let f = Formula::and(vec![Formula::eq_lit(c.input, *input), c.formula.clone()]);
        let (outcome, _) = Solver::default().solve(&f);
        assert!(
            !matches!(outcome, Outcome::Unsat),
            "model of {literal} must admit matching input {input:?}"
        );
    }
}

#[test]
fn positive_models_overapproximate() {
    assert_model_admits("/goo+d/", &["good", "goood", "xx goood yy"]);
    assert_model_admits("/^[0-9]+$/", &["1", "42", "0009"]);
    assert_model_admits(
        r"/^<(\w+)>([0-9]*)<\/\1>$/",
        &["<a>1</a>", "<timeout></timeout>", "<tag>99</tag>"],
    );
    assert_model_admits("/^a*(a)?$/", &["", "a", "aa", "aaa"]);
    assert_model_admits(r"/(?=ab)a./", &["ab", "xxabyy"]);
    assert_model_admits(r"/\bhi\b/", &["hi", "say hi now"]);
    assert_model_admits("/^(a|b){1,3}$/", &["a", "ab", "bba"]);
    assert_model_admits(r"/^(ab|c)\1$/", &["abab", "cc"]);
}

/// Negative models must admit every non-matching input.
#[test]
fn negative_models_overapproximate_nonmembership() {
    let cases: &[(&str, &[&str])] = &[
        ("/^a+$/", &["", "b", "ab", "ba"]),
        ("/goo+d/", &["", "god", "gud", "goo"]),
        (r"/^(x)\1$/", &["x", "xy", "xxx"]),
    ];
    for (literal, inputs) in cases {
        let regex = Regex::parse_literal(literal).expect("literal");
        for input in *inputs {
            let mut oracle = RegExp::from_regex(regex.clone());
            assert!(!oracle.test(input), "setup: {input:?} must not match");
            let mut pool = VarPool::new();
            let c = build_match_model(&regex, false, &mut pool, &BuildConfig::default());
            let f = Formula::and(vec![Formula::eq_lit(c.input, *input), c.formula.clone()]);
            let (outcome, _) = Solver::default().solve(&f);
            assert!(
                !matches!(outcome, Outcome::Unsat),
                "negative model of {literal} must admit non-matching {input:?}"
            );
        }
    }
}

/// CEGAR with a pinned input converges to exactly the oracle's captures.
#[test]
fn cegar_is_engine_exact_on_pinned_inputs() {
    let cases: &[(&str, &str)] = &[
        ("/^a*(a)?$/", "aa"),
        ("/^(a*)(a*)$/", "aaa"),
        ("/^(a|ab)(b?)$/", "ab"),
        (r"/^(\d*)(\d)$/", "123"),
        ("/(x+)(x*)/", "xxx"),
    ];
    for (literal, input) in cases {
        let regex = Regex::parse_literal(literal).expect("literal");
        let mut pool = VarPool::new();
        let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
        let result = CegarSolver::default()
            .solve(&Formula::eq_lit(c.input, *input), std::slice::from_ref(&c));
        let model = result
            .outcome
            .model()
            .unwrap_or_else(|| panic!("{literal} on {input:?} must be SAT"));
        let mut oracle = RegExp::from_regex(regex);
        let concrete = oracle.exec(input).expect("matches");
        for (i, cap) in c.captures.iter().enumerate() {
            let oracle_value = concrete.captures.get(i).cloned().flatten();
            let model_value = if model.get_bool(cap.defined) {
                Some(model.get_str(cap.value).unwrap_or("").to_string())
            } else {
                None
            };
            assert_eq!(
                oracle_value, model_value,
                "capture {i} of {literal} on {input:?}"
            );
        }
    }
}

/// The sound mutable-backreference ablation accepts strings the
/// approximate rule cannot represent (distinct iteration values).
#[test]
fn sound_mutable_backref_ablation() {
    let regex = Regex::parse_literal(r"/^((a|b)\2)+$/").expect("literal");
    // "aabb" requires two different iteration values ("aa" then "bb").
    let sound_cfg = BuildConfig {
        sound_mutable_backrefs: true,
        ..BuildConfig::default()
    };
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &sound_cfg);
    let f = Formula::and(vec![Formula::eq_lit(c.input, "aabb"), c.formula.clone()]);
    let (outcome, _) = Solver::default().solve(&f);
    assert!(
        !matches!(outcome, Outcome::Unsat),
        "sound model must admit the multi-valued iteration string"
    );
    // The approximate (paper) rule only represents same-valued
    // iterations, so "aabb" is outside its model (underapproximation,
    // §5.4) while "aaaa" is inside.
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    let f = Formula::and(vec![Formula::eq_lit(c.input, "aaaa"), c.formula.clone()]);
    let (outcome, _) = Solver::default().solve(&f);
    assert!(!matches!(outcome, Outcome::Unsat));
}

/// Unknown results surface instead of wrong answers when the
/// refinement limit is tiny.
#[test]
fn refinement_limit_yields_unknown_not_wrong() {
    let regex = Regex::parse_literal("/^(a*)(a*)(a*)$/").expect("literal");
    let mut pool = VarPool::new();
    let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
    // Demand an impossible capture split: C2 nonempty while C1 greedy.
    let problem = Formula::and(vec![
        Formula::eq_lit(c.input, "aaaa"),
        Formula::bool_is(c.captures[2].defined, true),
        Formula::eq_lit(c.captures[2].value, "aa"),
    ]);
    let solver = CegarSolver::new(strsolve::Solver::default(), 2);
    let result = solver.solve(&problem, &[c]);
    // Real engines assign C2 = "" here, so the demand is spurious; with
    // a tiny limit the answer must be Unknown or Unsat — never a model
    // disagreeing with the engine.
    match result.outcome {
        Outcome::Sat(_) => panic!("must not return an engine-inconsistent model"),
        Outcome::Unsat | Outcome::Unknown => {}
    }
}

//! Recording whole-program DSE runs as protocol-v2 streaming scripts.
//!
//! [`record_stream`] runs one job through the engine and, per executed
//! trace, re-expresses its flip solving as a wire session: one
//! `open_session`, then an interleaved `push`/`solve` pair per solved
//! clause, then `close_session`. Replaying the script through a served
//! session poses the same flip queries against the same assumption
//! stack the in-process run used, so the verdict trail folded from the
//! `solved` responses is byte-identical to [`verdict_digest`] of the
//! recorded report — that equality is the streaming determinism
//! contract checked by `expose-serve --replay-stream` in CI and by
//! `crates/service/tests/streaming_differential.rs`.
//!
//! [`verdict_digest`]: crate::proto::verdict_digest

use expose_core::SupportLevel;
use expose_dse::sym::Trace;
use expose_dse::{run_dse_observed, CacheSet, Job, Report};

use crate::json::{self, Value};
use crate::proto::VerdictDigest;
use crate::wire;

/// One job recorded as a streaming script plus its whole-program
/// reference report.
#[derive(Debug, Clone)]
pub struct StreamRecording {
    /// Job name (session names are `<name>/t<index>`).
    pub name: String,
    /// The reference report of the recorded run.
    pub report: Report,
    /// Request lines: one session per executed trace, in trace order.
    pub script: Vec<String>,
    /// The largest flip count of any recorded session — sessions with
    /// two or more flips exercise prefix-frame reuse.
    pub max_session_flips: usize,
}

/// The wire spelling of a support level (inverse of the `support`
/// field parser).
pub fn support_str(level: SupportLevel) -> &'static str {
    match level {
        SupportLevel::Concrete => "concrete",
        SupportLevel::Modeling => "modeling",
        SupportLevel::Captures => "captures",
        SupportLevel::Refinement => "refinement",
    }
}

/// Runs `job` and records every executed trace as a wire session.
pub fn record_stream(job: &Job) -> StreamRecording {
    let caches = CacheSet::session_from_config(&job.config);
    let mut script = Vec::new();
    let mut max_session_flips = 0usize;
    let mut index = 0usize;
    let support = job.config.support;
    let report = run_dse_observed(
        &job.program,
        &job.harness,
        &job.config,
        &caches,
        &mut |trace, flips| {
            append_trace_script(
                &mut script,
                &format!("{}/t{index}", job.name),
                trace,
                flips,
                support,
            );
            max_session_flips = max_session_flips.max(flips);
            index += 1;
        },
    );
    StreamRecording {
        name: job.name.clone(),
        report,
        script,
        max_session_flips,
    }
}

/// Appends one trace's session script: `open_session`, one
/// `push`+`solve` pair per solved clause, `close_session`. Events are
/// shipped incrementally — each push carries exactly the table prefix
/// its clause needs that earlier pushes have not sent.
fn append_trace_script(
    script: &mut Vec<String>,
    name: &str,
    trace: &Trace,
    flips: usize,
    support: SupportLevel,
) {
    use std::fmt::Write as _;
    let mut line = String::with_capacity(96);
    line.push_str("{\"v\":2,\"type\":\"open_session\",\"name\":");
    json::write_escaped(&mut line, name);
    let _ = write!(
        line,
        ",\"support\":\"{}\",\"inputs_used\":{}}}",
        support_str(support),
        trace.inputs_used
    );
    script.push(line);
    let mut sent = 0usize;
    for (k, clause) in trace.path.iter().take(flips).enumerate() {
        // Event subjects only reference strictly earlier events, so
        // sending the table prefix up to the clause's deepest direct
        // reference covers all transitive references too.
        let needed = wire::max_referenced_event(&clause.cond)
            .map_or(sent, |max| max + 1)
            .max(sent);
        let mut line = String::with_capacity(128);
        line.push_str("{\"v\":2,\"type\":\"push\",\"events\":[");
        for (i, event) in trace.events[sent..needed].iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            wire::write_event(&mut line, event);
        }
        sent = needed;
        line.push_str("],\"cond\":");
        wire::write_sym_expr(&mut line, &clause.cond);
        let _ = write!(line, ",\"taken\":{}}}", clause.taken);
        script.push(line);
        script.push(format!("{{\"v\":2,\"type\":\"solve\",\"depth\":{k}}}"));
    }
    script.push("{\"v\":2,\"type\":\"close_session\"}".to_string());
}

/// What a replayed stream's responses folded down to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamedVerdicts {
    /// FNV-1a 64 digest over the `solved` lines, in response order —
    /// comparable with [`crate::proto::verdict_digest`].
    pub digest: u64,
    /// Number of `solved` lines.
    pub solves: u64,
    /// Sum of their `prefix_reuse` fields.
    pub prefix_reuse_hits: u64,
    /// Number of `error` lines.
    pub errors: u64,
}

/// Folds the response lines of a served stream into a
/// [`StreamedVerdicts`]. Lines other than `solved`/`error` are
/// ignored; a `solved` line missing a verdict field is an error.
pub fn fold_responses<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<StreamedVerdicts, String> {
    let mut digest = VerdictDigest::new();
    let mut folded = StreamedVerdicts::default();
    for line in lines {
        let value = json::parse(line).map_err(|e| format!("response {line:?}: {e}"))?;
        match value.get("type").and_then(Value::as_str) {
            Some("solved") => {
                let field = |key: &str| {
                    value
                        .get(key)
                        .ok_or_else(|| format!("solved line missing {key:?}: {line}"))
                };
                let sat = field("sat")?
                    .as_bool()
                    .ok_or_else(|| format!("solved \"sat\" not a bool: {line}"))?;
                let refinements = field("refinements")?
                    .as_u64()
                    .ok_or_else(|| format!("solved \"refinements\" not an integer: {line}"))?;
                let limit_hit = field("limit_hit")?
                    .as_bool()
                    .ok_or_else(|| format!("solved \"limit_hit\" not a bool: {line}"))?;
                let prefix_reuse = field("prefix_reuse")?
                    .as_u64()
                    .ok_or_else(|| format!("solved \"prefix_reuse\" not an integer: {line}"))?;
                digest.update(sat, refinements, limit_hit);
                folded.solves += 1;
                folded.prefix_reuse_hits += prefix_reuse;
            }
            Some("error") => folded.errors += 1,
            _ => {}
        }
    }
    folded.digest = digest.finish();
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::verdict_digest;
    use crate::{ServeOptions, ServiceConfig};
    use expose_dse::{parser::parse_program, EngineConfig, Harness};

    fn flag_job() -> Job {
        let program = parse_program(
            r#"
            function f(x, y) {
                if (/^-?[0-9]+$/.test(x)) {
                    if (y === "go") { return 1; }
                    return 2;
                }
                return 0;
            }
        "#,
        )
        .expect("program parses");
        Job {
            name: "flag".into(),
            program,
            harness: Harness::strings("f", 2),
            config: EngineConfig {
                max_executions: 8,
                ..EngineConfig::default()
            },
        }
    }

    #[test]
    fn recorded_stream_replays_to_the_reference_digest() {
        let job = flag_job();
        let recording = record_stream(&job);
        assert!(!recording.script.is_empty());
        assert!(
            recording.max_session_flips >= 2,
            "workload must exercise multi-flip sessions"
        );

        let config = ServiceConfig {
            engine: job.config.clone(),
            ..ServiceConfig::default()
        };
        let mut input = recording.script.join("\n");
        input.push('\n');
        let mut out: Vec<u8> = Vec::new();
        let summary = ServeOptions::new()
            .config(config)
            .serve(input.as_bytes(), &mut out)
            .expect("serve");
        assert_eq!(summary.request_errors, 0);
        let text = String::from_utf8(out).expect("utf8");
        let folded = fold_responses(text.lines()).expect("responses parse");
        assert_eq!(folded.errors, 0);
        assert_eq!(folded.solves, recording.report.queries.len() as u64);
        assert_eq!(
            folded.digest,
            verdict_digest(&recording.report),
            "streamed verdict trail must be byte-identical to the in-process run"
        );
        assert!(
            folded.prefix_reuse_hits > 0,
            "multi-flip sessions must reuse prefix frames"
        );
    }

    #[test]
    fn fold_rejects_malformed_solved_lines() {
        let missing = [r#"{"v":2,"type":"solved","session":0,"depth":0,"sat":true}"#];
        assert!(fold_responses(missing).is_err());
        let ok = [
            r#"{"v":2,"type":"session_opened","session":0,"name":"s"}"#,
            r#"{"v":2,"type":"error","code":"bad_depth","msg":"x"}"#,
        ];
        let folded = fold_responses(ok).expect("parses");
        assert_eq!(folded.solves, 0);
        assert_eq!(folded.errors, 1);
        assert_eq!(folded.digest, VerdictDigest::new().finish());
    }
}

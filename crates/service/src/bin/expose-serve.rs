//! `expose-serve` — the NDJSON DSE job service.
//!
//! ```text
//! # Stream jobs through the work-stealing scheduler (stdin/stdout):
//! expose-serve [--workers N] [--max-inflight N]
//!
//! # Same protocol over a Unix socket (connections share warm caches):
//! expose-serve --socket /tmp/expose.sock [--workers N]
//!
//! # Serial reference: run the submits through `run_batch(jobs, 1)`
//! # and print the same result lines (the service-smoke CI job diffs
//! # this against the streamed output — they must be byte-identical):
//! expose-serve --batch
//!
//! # Print the benchmark corpus as submit lines (pipe back in):
//! expose-serve --emit-corpus 10 [--budget quick|full]
//! ```

use std::io::{BufRead, BufReader, Write};

use expose_dse::sched::Completion;
use expose_dse::{run_batch, Job};
use expose_service::session::{job_from_submit, serve, serve_with_caches, ServiceConfig};
use expose_service::{corpus_submit_lines, proto, CorpusBudget, Request};

struct Options {
    workers: usize,
    max_inflight: usize,
    socket: Option<String>,
    batch: bool,
    emit_corpus: Option<usize>,
    budget: CorpusBudget,
    cache_bytes: Option<usize>,
}

fn parse_args() -> Options {
    let mut options = Options {
        workers: 0,
        max_inflight: 256,
        socket: None,
        batch: false,
        emit_corpus: None,
        budget: CorpusBudget::Quick,
        cache_bytes: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => options.workers = value("--workers").parse().expect("worker count"),
            "--max-inflight" => {
                options.max_inflight = value("--max-inflight").parse().expect("bound")
            }
            "--socket" => options.socket = Some(value("--socket")),
            "--batch" => options.batch = true,
            "--emit-corpus" => {
                options.emit_corpus = Some(value("--emit-corpus").parse().expect("program count"))
            }
            "--budget" => {
                options.budget = match value("--budget").as_str() {
                    "quick" => CorpusBudget::Quick,
                    "full" => CorpusBudget::Full,
                    other => panic!("unknown budget {other:?} (expected quick|full)"),
                }
            }
            "--cache-bytes" => {
                options.cache_bytes = Some(value("--cache-bytes").parse().expect("byte budget"))
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    options
}

fn service_config(options: &Options) -> ServiceConfig {
    let mut config = ServiceConfig {
        workers: options.workers,
        max_inflight: options.max_inflight,
        ..ServiceConfig::default()
    };
    // `--cache-bytes N` caps each session cache at ~N resident bytes
    // (0 = unlimited); the default ceiling lives in ServiceConfig.
    if let Some(bytes) = options.cache_bytes {
        config.model_cache_byte_budget = bytes;
        config.query_cache_byte_budget = bytes;
    }
    config
}

/// The serial reference: collect submits, run them through
/// `run_batch(jobs, 1)`, and print result lines identical to a
/// streamed session's.
fn run_batch_mode(input: impl BufRead, config: &ServiceConfig) -> std::io::Result<()> {
    let mut pending: Vec<(String, Result<Job, String>)> = Vec::new();
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match proto::parse_request(line) {
            Ok(Request::Submit(submit)) => {
                let name = submit
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("job{}", pending.len()));
                let job = job_from_submit(&submit, &name, &config.engine);
                pending.push((name, job));
            }
            Ok(Request::Shutdown) => break,
            Ok(Request::Status | Request::Stats) => {
                // Progress queries are meaningless for an offline
                // batch; the streamed session answers them instead.
            }
            Err(message) => {
                println!("{}", proto::error_line(&message));
            }
        }
    }

    let jobs: Vec<Job> = pending
        .iter()
        .filter_map(|(_, job)| job.as_ref().ok().cloned())
        .collect();
    let mut reports = run_batch(jobs, 1).into_iter();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let total = pending.len() as u64;
    for (id, (name, job)) in pending.into_iter().enumerate() {
        let outcome = match job {
            Ok(_) => Ok(reports.next().expect("one report per job")),
            Err(error) => Err(error),
        };
        let completion = Completion {
            id: id as u64,
            name,
            outcome,
        };
        writeln!(out, "{}", proto::result_line(&completion))?;
    }
    writeln!(out, "{}", proto::done_line(total))?;
    Ok(())
}

#[cfg(unix)]
fn run_socket(path: &str, config: &ServiceConfig) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("expose-serve: listening on {path}");
    // All connections share one warm cache set — the point of running
    // as a service.
    let caches = config.cache_set();
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    eprintln!("expose-serve: accept failed: {e}");
                    continue;
                }
            };
            let caches = caches.clone();
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(e) => {
                        eprintln!("expose-serve: socket clone failed: {e}");
                        return;
                    }
                };
                if let Err(e) = serve_with_caches(reader, stream, config, caches) {
                    eprintln!("expose-serve: session failed: {e}");
                }
            });
        }
    });
    Ok(())
}

#[cfg(not(unix))]
fn run_socket(_path: &str, _config: &ServiceConfig) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a Unix platform",
    ))
}

fn main() -> std::io::Result<()> {
    let options = parse_args();

    if let Some(generated) = options.emit_corpus {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in corpus_submit_lines(generated, options.budget) {
            writeln!(out, "{line}")?;
        }
        return Ok(());
    }

    let config = service_config(&options);
    if options.batch {
        return run_batch_mode(std::io::stdin().lock(), &config);
    }
    if let Some(path) = &options.socket {
        return run_socket(path, &config);
    }

    let stdin = std::io::stdin();
    let summary = serve(stdin.lock(), std::io::stdout(), &config)?;
    eprintln!(
        "expose-serve: session done, {} job(s), {} malformed request(s)",
        summary.jobs, summary.request_errors
    );
    Ok(())
}

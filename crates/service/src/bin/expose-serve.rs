//! `expose-serve` — the NDJSON DSE job service.
//!
//! ```text
//! # Stream jobs through the work-stealing scheduler (stdin/stdout):
//! expose-serve [--workers N] [--max-inflight N]
//!
//! # Same protocol over a Unix socket or TCP (connections share warm
//! # caches; admission control via --max-connections; SIGTERM drains
//! # gracefully — stop accepting, flush in-flight, close each stream
//! # with its done line):
//! expose-serve --listen unix:/tmp/expose.sock [--workers N]
//! expose-serve --listen tcp:127.0.0.1:7077 [--max-connections N] [--shed]
//!
//! # Soak a served tcp: endpoint with concurrent closed-loop clients
//! # and report exact end-to-end latency quantiles (seconds 0 = one
//! # corpus pass per client):
//! expose-serve --soak 127.0.0.1:7077 --clients 8 --seconds 30
//!
//! # Serial reference: run the submits through a one-worker batch
//! # and print the same result lines (the service-smoke CI job diffs
//! # this against the streamed output — they must be byte-identical):
//! expose-serve --batch
//!
//! # Print the benchmark corpus as submit lines (pipe back in):
//! expose-serve --emit-corpus 10 [--budget quick|full]
//!
//! # Print the corpus as protocol-v2 streaming scripts (pipe back in):
//! expose-serve --emit-stream 10 [--budget quick|full]
//!
//! # Print the corpus as protocol-v2 exploration requests (pipe back
//! # in; the explore-smoke CI job byte-diffs the served output across
//! # --flip-workers 1/2/8):
//! expose-serve --emit-explore 10 --iterations 5 [--budget quick|full]
//!
//! # Replay recorded streaming scripts against a served session and
//! # check the solved responses against the whole-program reference
//! # (one deterministic line per workload; exits nonzero on any
//! # mismatch — the streaming leg of service-smoke runs this at
//! # --workers 1/2/8 and byte-diffs the outputs):
//! expose-serve --replay-stream 10 [--workers N]
//! ```

use std::io::{BufRead, Write};

use expose_dse::sched::Completion;
use expose_dse::BatchOptions;
use expose_service::json::{self, Value};
use expose_service::session::{job_from_submit, ServeOptions, ServiceConfig};
use expose_service::stream::{fold_responses, record_stream};
use expose_service::{
    corpus_explore_lines, corpus_submit_lines, proto, run_soak, serve_listener, CorpusBudget,
    Listen, ProtoVersion, Request, ServerState, SoakOptions,
};

struct Options {
    workers: usize,
    flip_workers: Option<usize>,
    max_inflight: usize,
    listen: Option<String>,
    max_connections: Option<usize>,
    shed: bool,
    metrics_text: bool,
    soak: Option<String>,
    clients: usize,
    seconds: u64,
    batch: bool,
    emit_corpus: Option<usize>,
    emit_stream: Option<usize>,
    emit_explore: Option<usize>,
    iterations: usize,
    replay_stream: Option<usize>,
    budget: CorpusBudget,
    cache_bytes: Option<usize>,
}

fn parse_args() -> Options {
    let mut options = Options {
        workers: 0,
        flip_workers: None,
        max_inflight: 256,
        listen: None,
        max_connections: None,
        shed: false,
        metrics_text: false,
        soak: None,
        clients: 8,
        seconds: 0,
        batch: false,
        emit_corpus: None,
        emit_stream: None,
        emit_explore: None,
        iterations: 5,
        replay_stream: None,
        budget: CorpusBudget::Quick,
        cache_bytes: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => options.workers = value("--workers").parse().expect("worker count"),
            "--flip-workers" => {
                options.flip_workers = Some(value("--flip-workers").parse().expect("worker count"))
            }
            "--max-inflight" => {
                options.max_inflight = value("--max-inflight").parse().expect("bound")
            }
            "--listen" => options.listen = Some(value("--listen")),
            // Hidden alias of `--listen unix:PATH`, kept for one
            // release.
            "--socket" => {
                let path = value("--socket");
                eprintln!("expose-serve: --socket is deprecated; use --listen unix:{path} instead");
                options.listen = Some(format!("unix:{path}"));
            }
            "--max-connections" => {
                options.max_connections =
                    Some(value("--max-connections").parse().expect("connection cap"))
            }
            "--shed" => options.shed = true,
            "--metrics-text" => options.metrics_text = true,
            "--soak" => {
                let addr = value("--soak");
                // Accept both a bare host:port and the tcp: spec form.
                options.soak = Some(addr.strip_prefix("tcp:").unwrap_or(&addr).to_string());
            }
            "--clients" => options.clients = value("--clients").parse().expect("client count"),
            "--seconds" => options.seconds = value("--seconds").parse().expect("seconds"),
            "--batch" => options.batch = true,
            "--emit-corpus" => {
                options.emit_corpus = Some(value("--emit-corpus").parse().expect("program count"))
            }
            "--emit-stream" => {
                options.emit_stream = Some(value("--emit-stream").parse().expect("program count"))
            }
            "--emit-explore" => {
                options.emit_explore = Some(value("--emit-explore").parse().expect("program count"))
            }
            "--iterations" => {
                options.iterations = value("--iterations").parse().expect("iteration count")
            }
            "--replay-stream" => {
                options.replay_stream =
                    Some(value("--replay-stream").parse().expect("program count"))
            }
            "--budget" => {
                options.budget = match value("--budget").as_str() {
                    "quick" => CorpusBudget::Quick,
                    "full" => CorpusBudget::Full,
                    other => panic!("unknown budget {other:?} (expected quick|full)"),
                }
            }
            "--cache-bytes" => {
                options.cache_bytes = Some(value("--cache-bytes").parse().expect("byte budget"))
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    options
}

fn service_config(options: &Options) -> ServiceConfig {
    let mut config = ServiceConfig::default()
        .workers(options.workers)
        .max_inflight(options.max_inflight)
        .load_shed(options.shed);
    if let Some(cap) = options.max_connections {
        config = config.max_connections(cap);
    }
    // `--cache-bytes N` caps each session cache at ~N resident bytes
    // (0 = unlimited); the default ceiling lives in ServiceConfig.
    if let Some(bytes) = options.cache_bytes {
        config = config.cache_bytes(bytes);
    }
    // `--flip-workers N` sets the default per-trace flip-solving worker
    // count (requests may still override per line). Exploration output
    // must be byte-identical for any value — explore-smoke diffs it.
    if let Some(n) = options.flip_workers {
        config = config.flip_workers(n);
    }
    config
}

/// The benchmark corpus as parsed jobs (engine settings = the service
/// defaults plus each submit line's overrides).
fn corpus_jobs(
    generated: usize,
    budget: CorpusBudget,
    config: &ServiceConfig,
) -> Vec<expose_dse::Job> {
    corpus_submit_lines(generated, budget)
        .iter()
        .enumerate()
        .map(|(i, line)| {
            let (request, _) = proto::parse_request(line).expect("corpus line parses");
            let Request::Submit(submit) = request else {
                panic!("corpus line is a submit");
            };
            let name = submit.name.clone().unwrap_or_else(|| format!("job{i}"));
            job_from_submit(&submit, &name, &config.engine).expect("corpus job parses")
        })
        .collect()
}

/// The serial reference: collect submits, run them through a
/// one-worker batch, and print result lines identical to a streamed
/// session's.
fn run_batch_mode(input: impl BufRead, config: &ServiceConfig) -> std::io::Result<()> {
    let mut pending: Vec<(String, ProtoVersion, Result<expose_dse::Job, String>)> = Vec::new();
    let mut stream_version = ProtoVersion::V1;
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match proto::parse_request(line) {
            Ok((request, version)) => {
                if version == ProtoVersion::V2 {
                    stream_version = ProtoVersion::V2;
                }
                match request {
                    Request::Submit(submit) => {
                        let name = submit
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("job{}", pending.len()));
                        let job = job_from_submit(&submit, &name, &config.engine);
                        pending.push((name, version, job));
                    }
                    Request::Shutdown => break,
                    Request::Status | Request::Stats | Request::Metrics => {
                        // Progress queries are meaningless for an
                        // offline batch; the streamed session answers
                        // them instead.
                    }
                    Request::OpenSession(_)
                    | Request::Push(_)
                    | Request::Pop
                    | Request::Solve { .. }
                    | Request::CloseSession
                    | Request::Explore(_) => {
                        println!(
                            "{}",
                            proto::error_line(&proto::RequestError::new(
                                proto::ErrorCode::NoSession,
                                "streaming sessions need a served session, not --batch",
                                version,
                            ))
                        );
                    }
                }
            }
            Err(error) => {
                println!("{}", proto::error_line(&error));
            }
        }
    }

    let jobs: Vec<expose_dse::Job> = pending
        .iter()
        .filter_map(|(_, _, job)| job.as_ref().ok().cloned())
        .collect();
    let mut reports = BatchOptions::new().workers(1).run(jobs).into_iter();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let total = pending.len() as u64;
    for (id, (name, version, job)) in pending.into_iter().enumerate() {
        let outcome = match job {
            Ok(_) => Ok(reports.next().expect("one report per job")),
            Err(error) => Err(error),
        };
        let completion = Completion {
            id: id as u64,
            name,
            outcome,
        };
        writeln!(out, "{}", proto::result_line(&completion, version))?;
    }
    writeln!(out, "{}", proto::done_line(total, stream_version))?;
    Ok(())
}

/// Prints the corpus as protocol-v2 streaming scripts: per workload,
/// one session per executed trace, pushes and solves interleaved.
fn run_emit_stream(generated: usize, options: &Options) -> std::io::Result<()> {
    let config = service_config(options);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for job in corpus_jobs(generated, options.budget, &config) {
        for line in record_stream(&job).script {
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}

/// Replays the corpus as streaming scripts against served sessions and
/// checks the solved responses against the whole-program reference.
///
/// Per workload, the served input is the workload's `submit` (routed
/// through the scheduler at the configured worker count) followed by
/// the recorded session scripts (solved on the reader thread against
/// the same warm caches). Three equalities must hold:
///
/// 1. the folded `solved` digest equals the recorded reference run's,
/// 2. the `result` line's `verdicts` digest equals the same value,
/// 3. across the corpus, multi-flip workloads report `prefix_reuse`
///    \> 0 in aggregate (a single workload can legitimately report 0 —
///    e.g. when every deep flip is statically infeasible and never
///    reaches the assumption stack).
///
/// One deterministic line per workload goes to stdout, so CI can run
/// this at several worker counts and byte-diff the outputs.
fn run_replay_stream(generated: usize, options: &Options) -> std::io::Result<()> {
    let config = service_config(options);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut failures = 0usize;
    let mut any_multi_flip = false;
    let mut total_prefix_reuse = 0u64;
    for job in corpus_jobs(generated, options.budget, &config) {
        let recording = record_stream(&job);
        let reference = proto::verdict_digest(&recording.report);

        let mut input = String::new();
        input.push_str(
            corpus_submit_lines(generated, options.budget)
                .iter()
                .find(|l| l.contains(&format!("\"name\":{}", json::escaped(&job.name))))
                .expect("workload has a submit line"),
        );
        input.push('\n');
        for line in &recording.script {
            input.push_str(line);
            input.push('\n');
        }

        let mut served: Vec<u8> = Vec::new();
        let summary = ServeOptions::new()
            .config(config.clone())
            .serve(input.as_bytes(), &mut served)?;
        let served = String::from_utf8(served).expect("utf8 output");
        let folded = fold_responses(served.lines()).unwrap_or_else(|e| panic!("{e}"));
        let submitted = served
            .lines()
            .find_map(|line| {
                let value = json::parse(line).ok()?;
                if value.get("type").and_then(Value::as_str) != Some("result") {
                    return None;
                }
                value
                    .get("verdicts")
                    .and_then(Value::as_str)
                    .map(str::to_string)
            })
            .unwrap_or_default();

        any_multi_flip |= recording.max_session_flips >= 2;
        total_prefix_reuse += folded.prefix_reuse_hits;

        let digest_ok = folded.digest == reference;
        let submit_ok = submitted == format!("{reference:016x}");
        let clean = summary.request_errors == 0 && folded.errors == 0;
        let ok = digest_ok && submit_ok && clean;
        if !ok {
            failures += 1;
            eprintln!(
                "expose-serve: {} mismatch: streamed={:016x} reference={reference:016x} \
                 submit={submitted:?} prefix_reuse={} errors={}/{}",
                job.name,
                folded.digest,
                folded.prefix_reuse_hits,
                summary.request_errors,
                folded.errors,
            );
        }
        writeln!(
            out,
            "{} sessions={} solves={} verdicts={reference:016x} prefix_reuse={} {}",
            job.name,
            recording.report.executions,
            folded.solves,
            folded.prefix_reuse_hits,
            if ok { "ok" } else { "MISMATCH" },
        )?;
    }
    if failures > 0 {
        return Err(std::io::Error::other(format!(
            "{failures} workload(s) diverged between streamed and whole-program solving"
        )));
    }
    if any_multi_flip && total_prefix_reuse == 0 {
        return Err(std::io::Error::other(
            "multi-flip workloads streamed without any prefix reuse",
        ));
    }
    Ok(())
}

/// SIGTERM/SIGINT → graceful drain: the async-signal handler only
/// flips a static flag; a watcher thread turns the flag into
/// [`ServerState::begin_drain`] from safe code.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use expose_service::ServerState;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    pub fn drain_on_signals(state: &Arc<ServerState>) {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        let state = Arc::clone(state);
        std::thread::spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                eprintln!("expose-serve: signal received; draining");
                state.begin_drain();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
}

#[cfg(not(unix))]
mod sig {
    use expose_service::ServerState;
    use std::sync::Arc;

    pub fn drain_on_signals(_state: &Arc<ServerState>) {}
}

/// Serves `--listen stdio|unix:PATH|tcp:ADDR` through the admission
/// front-end: one shared warm cache set, `--max-connections` cap,
/// graceful drain on SIGTERM/SIGINT.
fn run_listener(spec: &str, options: &Options) -> std::io::Result<()> {
    let listen = Listen::parse(spec).map_err(std::io::Error::other)?;
    let mut listener = listen.bind()?;
    eprintln!("expose-serve: listening on {}", listener.local_addr());
    let state = ServerState::new();
    sig::drain_on_signals(&state);
    let serve = ServeOptions::new()
        .config(service_config(options))
        .metrics_text(options.metrics_text);
    let summary = serve_listener(listener.as_mut(), &serve, &state)?;
    eprintln!(
        "expose-serve: drained, {} connection(s) served, {} refused",
        summary.connections, summary.rejected
    );
    Ok(())
}

/// Runs the concurrent soak client against an already-serving `tcp:`
/// endpoint and prints one summary line; exits nonzero if any job got
/// no response at all.
fn run_soak_mode(addr: &str, options: &Options) -> std::io::Result<()> {
    let report = run_soak(&SoakOptions {
        addr: addr.to_string(),
        clients: options.clients,
        seconds: options.seconds,
        budget: options.budget,
        ..SoakOptions::default()
    })?;
    println!(
        "soak: clients={} jobs={} completed={} errors={} dropped={} wall_ms={:.0} \
         p50_ms={:.3} p99_ms={:.3} max_ms={:.3}",
        options.clients,
        report.jobs,
        report.completed,
        report.errors,
        report.dropped,
        report.wall_ms,
        report.latency_p50_ms,
        report.latency_p99_ms,
        report.latency_max_ms,
    );
    if report.dropped > 0 {
        return Err(std::io::Error::other(format!(
            "{} job(s) got no response from the server",
            report.dropped
        )));
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    let options = parse_args();

    if let Some(addr) = &options.soak {
        return run_soak_mode(addr, &options);
    }

    if let Some(generated) = options.emit_corpus {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in corpus_submit_lines(generated, options.budget) {
            writeln!(out, "{line}")?;
        }
        return Ok(());
    }
    if let Some(generated) = options.emit_stream {
        return run_emit_stream(generated, &options);
    }
    if let Some(generated) = options.emit_explore {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in corpus_explore_lines(generated, options.budget, options.iterations) {
            writeln!(out, "{line}")?;
        }
        return Ok(());
    }
    if let Some(generated) = options.replay_stream {
        return run_replay_stream(generated, &options);
    }

    let config = service_config(&options);
    if options.batch {
        return run_batch_mode(std::io::stdin().lock(), &config);
    }
    if let Some(spec) = &options.listen {
        return run_listener(spec, &options);
    }

    let stdin = std::io::stdin();
    let summary = ServeOptions::new()
        .config(config)
        .metrics_text(options.metrics_text)
        .serve(stdin.lock(), std::io::stdout())?;
    eprintln!(
        "expose-serve: session done, {} job(s), {} request error(s)",
        summary.jobs, summary.request_errors
    );
    Ok(())
}

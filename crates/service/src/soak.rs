//! A concurrent TCP soak client: N closed-loop clients submit the
//! benchmark corpus over real sockets and measure end-to-end per-job
//! latency — the client side of the `soak-smoke` CI job and of the
//! `perf --throughput` latency trajectory
//! (`latency_p50_ms`/`latency_p99_ms` in `BENCH_dse.json`).
//!
//! Each client is closed-loop (one submit in flight at a time), so the
//! measured latency is end-to-end service time — parse, schedule,
//! solve, emit — under `clients`-way concurrency, not queueing delay
//! behind the client's own backlog. Quantiles here are exact (sorted
//! samples), unlike the bucketed server-side histogram.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::{corpus_submit_lines, CorpusBudget};

/// Options for one soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Wall-clock budget in seconds; `0` means one corpus pass per
    /// client instead of a timed run.
    pub seconds: u64,
    /// Generated (Table 7) programs appended to the 11 library
    /// workloads of each corpus pass.
    pub generated: usize,
    /// Per-job execution budget preset.
    pub budget: CorpusBudget,
}

impl Default for SoakOptions {
    fn default() -> SoakOptions {
        SoakOptions {
            addr: String::new(),
            clients: 8,
            seconds: 0,
            generated: 10,
            budget: CorpusBudget::Quick,
        }
    }
}

/// Aggregated outcome of a soak run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoakReport {
    /// Jobs submitted across all clients.
    pub jobs: u64,
    /// Jobs answered with a `result` line.
    pub completed: u64,
    /// Jobs answered with an `error` line.
    pub errors: u64,
    /// Jobs that got no response at all (must be 0 for a healthy
    /// server).
    pub dropped: u64,
    /// Wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Median end-to-end job latency, milliseconds (exact).
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end job latency, milliseconds (exact).
    pub latency_p99_ms: f64,
    /// Slowest job, milliseconds.
    pub latency_max_ms: f64,
}

struct ClientOutcome {
    submitted: u64,
    completed: u64,
    errors: u64,
    latencies: Vec<Duration>,
}

/// One closed-loop client: submit a job, wait for its `result` (or
/// `error`) line, repeat over the corpus until the deadline (or for
/// one pass when there is none), then shut down cleanly and drain the
/// stream to EOF.
fn client_loop(
    addr: &str,
    lines: &[String],
    deadline: Option<Instant>,
) -> io::Result<ClientOutcome> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut outcome = ClientOutcome {
        submitted: 0,
        completed: 0,
        errors: 0,
        latencies: Vec::new(),
    };
    let mut response = String::new();
    'run: loop {
        for line in lines {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                break 'run;
            }
            let sent = Instant::now();
            writeln!(writer, "{line}")?;
            writer.flush()?;
            outcome.submitted += 1;
            loop {
                response.clear();
                if reader.read_line(&mut response)? == 0 {
                    // Server went away mid-job: the submit counts as
                    // dropped.
                    break 'run;
                }
                if response.contains("\"type\":\"result\"") {
                    outcome.completed += 1;
                    outcome.latencies.push(sent.elapsed());
                    break;
                }
                if response.contains("\"type\":\"error\"") {
                    outcome.errors += 1;
                    break;
                }
                // Any other line (status, draining notice…) is not the
                // answer to this job; keep reading.
            }
        }
        if deadline.is_none() {
            break;
        }
    }
    let _ = writer.write_all(b"{\"type\":\"shutdown\"}\n");
    let _ = writer.flush();
    // Drain the tail (pending results were already consumed; the done
    // line and EOF confirm a clean close).
    loop {
        response.clear();
        match reader.read_line(&mut response) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                if response.contains("\"type\":\"result\"") {
                    outcome.completed += 1;
                }
            }
        }
    }
    Ok(outcome)
}

/// Runs `options.clients` concurrent closed-loop clients against a
/// serving `--listen tcp:` endpoint and aggregates exact latency
/// quantiles.
pub fn run_soak(options: &SoakOptions) -> io::Result<SoakReport> {
    let lines = corpus_submit_lines(options.generated, options.budget);
    let deadline =
        (options.seconds > 0).then(|| Instant::now() + Duration::from_secs(options.seconds));
    let started = Instant::now();
    let outcomes: Vec<io::Result<ClientOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients.max(1))
            .map(|_| scope.spawn(|| client_loop(&options.addr, &lines, deadline)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client panicked"))
            .collect()
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut report = SoakReport {
        wall_ms,
        ..SoakReport::default()
    };
    let mut latencies: Vec<Duration> = Vec::new();
    for outcome in outcomes {
        let outcome = outcome?;
        report.jobs += outcome.submitted;
        report.completed += outcome.completed;
        report.errors += outcome.errors;
        latencies.extend(outcome.latencies);
    }
    report.dropped = report.jobs.saturating_sub(report.completed + report.errors);
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[rank.min(latencies.len() - 1)].as_secs_f64() * 1e3
    };
    report.latency_p50_ms = quantile(0.50);
    report.latency_p99_ms = quantile(0.99);
    report.latency_max_ms = latencies
        .last()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    Ok(report)
}

//! Transport abstraction for the NDJSON service: one
//! [`Listener`]/[`Connection`] trait pair with stdio, Unix-socket, and
//! non-blocking TCP backends, selected by the `--listen
//! stdio|unix:PATH|tcp:ADDR` surface.
//!
//! Socket listeners run a poll-style readiness loop instead of blocking
//! in `accept(2)`: [`Listener::poll_accept`] returns within its timeout
//! whether or not a peer arrived, so the accept loop in
//! [`crate::server::serve_listener`] can check the drain flag between
//! polls. Accepted socket connections carry a short read timeout for
//! the same reason — a per-connection reader wakes regularly (seeing
//! [`LineEvent::TimedOut`]) and notices a drain even while its peer is
//! idle.
//!
//! [`next_line`] is the byte-capped line reader every transport shares.
//! Unlike `BufRead::lines` it survives read timeouts (partial data
//! accumulates in the caller-owned [`LineBuffer`] across calls),
//! tolerates invalid UTF-8 (lossy decode — the protocol layer answers
//! `malformed_json` instead of the session dying), and bounds memory: a
//! line over the cap is discarded up to its newline and reported as
//! [`LineEvent::Oversized`] so the session can answer `bad_request` and
//! keep serving.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How long an idle `poll_accept` sleeps between non-blocking accept
/// attempts.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

/// Read timeout installed on accepted socket connections, i.e. how
/// often an idle session reader wakes to check the drain flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// Where the service listens, parsed from one `--listen` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// One session over stdin/stdout (the default).
    Stdio,
    /// A Unix domain socket bound at the given path.
    Unix(PathBuf),
    /// A TCP socket bound at the given address, e.g.
    /// `127.0.0.1:7077`.
    Tcp(String),
}

impl Listen {
    /// Parses a `--listen` spec: `stdio`, `unix:PATH`, or `tcp:ADDR`.
    pub fn parse(spec: &str) -> Result<Listen, String> {
        if spec == "stdio" {
            return Ok(Listen::Stdio);
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: needs a socket path".to_string());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp: needs a host:port address".to_string());
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        Err(format!(
            "unknown listen spec {spec:?} (expected stdio, unix:PATH, or tcp:ADDR)"
        ))
    }

    /// Binds the spec, yielding a ready [`Listener`].
    pub fn bind(&self) -> io::Result<Box<dyn Listener + Send>> {
        match self {
            Listen::Stdio => Ok(Box::new(StdioListener::new())),
            #[cfg(unix)]
            Listen::Unix(path) => Ok(Box::new(UnixTransport::bind(path)?)),
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not supported on this platform",
            )),
            Listen::Tcp(addr) => Ok(Box::new(TcpTransport::bind(addr)?)),
        }
    }
}

/// One accepted connection, split into the session's I/O halves by
/// [`Connection::open`] (sockets split into two clones of the stream).
pub trait Connection: Send {
    /// Peer label for diagnostics (address, socket path, or `stdio`).
    fn peer(&self) -> String;

    /// Consumes the connection, yielding the buffered reader and the
    /// writer the session runs over.
    #[allow(clippy::type_complexity)]
    fn open(self: Box<Self>) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)>;
}

/// What one [`Listener::poll_accept`] call produced.
pub enum Accepted {
    /// A peer connected.
    Connection(Box<dyn Connection>),
    /// Nothing arrived within the poll interval; check the drain flag
    /// and poll again.
    Idle,
    /// The listener can produce no further connections (stdio's single
    /// session was already taken).
    Exhausted,
}

/// An accepting transport backend.
pub trait Listener {
    /// Label of the bound endpoint (resolved address for TCP, so
    /// binding port `0` reports the real port).
    fn local_addr(&self) -> String;

    /// Polls for the next connection, returning within roughly
    /// `timeout` either way.
    fn poll_accept(&mut self, timeout: Duration) -> io::Result<Accepted>;
}

/// The stdio transport: exactly one connection over stdin/stdout.
#[derive(Debug, Default)]
pub struct StdioListener {
    taken: bool,
}

impl StdioListener {
    /// A fresh stdio listener (one connection available).
    pub fn new() -> StdioListener {
        StdioListener::default()
    }
}

impl Listener for StdioListener {
    fn local_addr(&self) -> String {
        "stdio".to_string()
    }

    fn poll_accept(&mut self, _timeout: Duration) -> io::Result<Accepted> {
        if self.taken {
            return Ok(Accepted::Exhausted);
        }
        self.taken = true;
        Ok(Accepted::Connection(Box::new(StdioConnection)))
    }
}

struct StdioConnection;

impl Connection for StdioConnection {
    fn peer(&self) -> String {
        "stdio".to_string()
    }

    fn open(self: Box<Self>) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        Ok((
            Box::new(io::BufReader::new(io::stdin())),
            Box::new(io::stdout()),
        ))
    }
}

/// The non-blocking TCP transport.
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
}

impl TcpTransport {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// switches the socket to non-blocking accepts.
    pub fn bind(addr: &str) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(TcpTransport { listener })
    }
}

impl Listener for TcpTransport {
    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:?".to_string())
    }

    fn poll_accept(&mut self, timeout: Duration) -> io::Result<Accepted> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(READ_TICK))?;
                    return Ok(Accepted::Connection(Box::new(TcpConnection {
                        stream,
                        peer: peer.to_string(),
                    })));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(Accepted::Idle);
                    }
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

struct TcpConnection {
    stream: TcpStream,
    peer: String,
}

impl Connection for TcpConnection {
    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn open(self: Box<Self>) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.stream.try_clone()?;
        Ok((Box::new(io::BufReader::new(reader)), Box::new(self.stream)))
    }
}

/// The Unix-domain-socket transport (non-blocking accepts, like TCP).
#[cfg(unix)]
#[derive(Debug)]
pub struct UnixTransport {
    listener: UnixListener,
    path: PathBuf,
}

#[cfg(unix)]
impl UnixTransport {
    /// Binds a socket at `path`, replacing a stale socket file from an
    /// earlier run.
    pub fn bind(path: &std::path::Path) -> io::Result<UnixTransport> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(UnixTransport {
            listener,
            path: path.to_path_buf(),
        })
    }
}

#[cfg(unix)]
impl Listener for UnixTransport {
    fn local_addr(&self) -> String {
        format!("unix:{}", self.path.display())
    }

    fn poll_accept(&mut self, timeout: Duration) -> io::Result<Accepted> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_read_timeout(Some(READ_TICK))?;
                    return Ok(Accepted::Connection(Box::new(UnixConnection {
                        stream,
                        peer: format!("unix:{}", self.path.display()),
                    })));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(Accepted::Idle);
                    }
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(unix)]
impl Drop for UnixTransport {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(unix)]
struct UnixConnection {
    stream: UnixStream,
    peer: String,
}

#[cfg(unix)]
impl Connection for UnixConnection {
    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn open(self: Box<Self>) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        let reader = self.stream.try_clone()?;
        Ok((Box::new(io::BufReader::new(reader)), Box::new(self.stream)))
    }
}

/// One event from [`next_line`].
#[derive(Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line (newline stripped), lossily UTF-8 decoded.
    Line(String),
    /// A line exceeded the byte cap; `dropped` bytes of payload were
    /// discarded up to (not including) its newline.
    Oversized {
        /// Bytes discarded from the oversized line.
        dropped: usize,
    },
    /// The underlying read timed out with the line still incomplete;
    /// partial data stays buffered. Check the drain flag and call
    /// again.
    TimedOut,
    /// End of input (a trailing unterminated line is returned as
    /// [`LineEvent::Line`] first).
    Eof,
}

/// Caller-owned accumulation state for [`next_line`], so a line split
/// across read timeouts survives between calls.
#[derive(Debug, Default)]
pub struct LineBuffer {
    bytes: Vec<u8>,
    /// Discarding an oversized line until its newline.
    dropping: bool,
    dropped: usize,
}

impl LineBuffer {
    /// An empty buffer.
    pub fn new() -> LineBuffer {
        LineBuffer::default()
    }
}

/// Reads the next newline-terminated line from `input`, capping any
/// single line at `max_bytes` (`0` = unlimited). See [`LineEvent`] for
/// the possible outcomes; timeouts (`WouldBlock`/`TimedOut` I/O
/// errors) are surfaced as [`LineEvent::TimedOut`] rather than errors.
pub fn next_line<R: BufRead + ?Sized>(
    input: &mut R,
    buf: &mut LineBuffer,
    max_bytes: usize,
) -> io::Result<LineEvent> {
    loop {
        let (consumed, newline_at) = {
            let available = match input.fill_buf() {
                Ok(chunk) => chunk,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(LineEvent::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF: flush whatever the final (unterminated) line
                // accumulated, mirroring `BufRead::lines`.
                if buf.dropping {
                    buf.dropping = false;
                    return Ok(LineEvent::Oversized {
                        dropped: std::mem::take(&mut buf.dropped),
                    });
                }
                if buf.bytes.is_empty() {
                    return Ok(LineEvent::Eof);
                }
                return Ok(LineEvent::Line(take_line(buf)));
            }
            let newline_at = available.iter().position(|&b| b == b'\n');
            let upto = newline_at.unwrap_or(available.len());
            if buf.dropping {
                buf.dropped += upto;
            } else {
                buf.bytes.extend_from_slice(&available[..upto]);
            }
            (upto + usize::from(newline_at.is_some()), newline_at)
        };
        input.consume(consumed);
        if !buf.dropping && max_bytes > 0 && buf.bytes.len() > max_bytes {
            // Line over the cap: forget the payload, keep discarding
            // until its newline.
            buf.dropping = true;
            buf.dropped = std::mem::take(&mut buf.bytes).len();
        }
        if newline_at.is_some() {
            if buf.dropping {
                buf.dropping = false;
                return Ok(LineEvent::Oversized {
                    dropped: std::mem::take(&mut buf.dropped),
                });
            }
            return Ok(LineEvent::Line(take_line(buf)));
        }
    }
}

fn take_line(buf: &mut LineBuffer) -> String {
    let line = String::from_utf8_lossy(&buf.bytes).into_owned();
    buf.bytes.clear();
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drain(input: &str, max_bytes: usize) -> Vec<LineEvent> {
        let mut reader = Cursor::new(input.as_bytes().to_vec());
        let mut buf = LineBuffer::new();
        let mut events = Vec::new();
        loop {
            let event = next_line(&mut reader, &mut buf, max_bytes).expect("read");
            let done = event == LineEvent::Eof;
            events.push(event);
            if done {
                return events;
            }
        }
    }

    #[test]
    fn parse_listen_specs() {
        assert_eq!(Listen::parse("stdio"), Ok(Listen::Stdio));
        assert_eq!(
            Listen::parse("unix:/tmp/s.sock"),
            Ok(Listen::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7077"),
            Ok(Listen::Tcp("127.0.0.1:7077".to_string()))
        );
        assert!(Listen::parse("udp:1.2.3.4").is_err());
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("tcp:").is_err());
    }

    #[test]
    fn lines_split_and_final_unterminated_line_counts() {
        let events = drain("a\nbb\nccc", 0);
        assert_eq!(
            events,
            vec![
                LineEvent::Line("a".to_string()),
                LineEvent::Line("bb".to_string()),
                LineEvent::Line("ccc".to_string()),
                LineEvent::Eof,
            ]
        );
        assert_eq!(drain("", 0), vec![LineEvent::Eof]);
    }

    #[test]
    fn oversized_lines_are_discarded_not_fatal() {
        let long = "x".repeat(100);
        let events = drain(&format!("ok\n{long}\nstill-here\n"), 16);
        assert_eq!(
            events,
            vec![
                LineEvent::Line("ok".to_string()),
                LineEvent::Oversized { dropped: 100 },
                LineEvent::Line("still-here".to_string()),
                LineEvent::Eof,
            ]
        );
        // Oversized final line without a newline drains at EOF too.
        let events = drain(&long, 16);
        assert_eq!(
            events,
            vec![LineEvent::Oversized { dropped: 100 }, LineEvent::Eof]
        );
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let mut reader = Cursor::new(b"ab\xff\xfecd\n".to_vec());
        let mut buf = LineBuffer::new();
        let event = next_line(&mut reader, &mut buf, 0).expect("read");
        let LineEvent::Line(line) = event else {
            panic!("line expected");
        };
        assert!(line.starts_with("ab"), "lossy decode: {line:?}");
        assert!(line.ends_with("cd"), "lossy decode: {line:?}");
    }

    /// A reader that times out partway through a line, like a socket
    /// with a read timeout.
    struct Stutter {
        chunks: Vec<Vec<u8>>,
        buffered: Vec<u8>,
    }

    impl io::Read for Stutter {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            unreachable!("BufRead goes through fill_buf")
        }
    }

    impl BufRead for Stutter {
        fn fill_buf(&mut self) -> io::Result<&[u8]> {
            if self.buffered.is_empty() {
                match self.chunks.first() {
                    None => return Ok(&[]),
                    Some(chunk) if chunk.is_empty() => {
                        self.chunks.remove(0);
                        return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
                    }
                    Some(_) => self.buffered = self.chunks.remove(0),
                }
            }
            Ok(&self.buffered)
        }

        fn consume(&mut self, amt: usize) {
            self.buffered.drain(..amt);
        }
    }

    #[test]
    fn partial_line_survives_a_timeout() {
        // "{"half" … timeout … ":1}\n" must come back as one line.
        let mut reader = Stutter {
            chunks: vec![b"{\"half\"".to_vec(), Vec::new(), b":1}\n".to_vec()],
            buffered: Vec::new(),
        };
        let mut buf = LineBuffer::new();
        assert_eq!(
            next_line(&mut reader, &mut buf, 0).expect("read"),
            LineEvent::TimedOut
        );
        assert_eq!(
            next_line(&mut reader, &mut buf, 0).expect("read"),
            LineEvent::Line("{\"half\":1}".to_string())
        );
        assert_eq!(
            next_line(&mut reader, &mut buf, 0).expect("read"),
            LineEvent::Eof
        );
    }
}

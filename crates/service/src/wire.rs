//! JSON codec for symbolic expressions and regex events — the payload
//! of protocol-v2 `push` requests.
//!
//! Expressions are compact tagged arrays (`["in",0]`, `["eq",a,b]`,
//! …), events are objects carrying the regex source, its flags and the
//! symbolic subject. The encoding round-trips exactly the parts of a
//! [`RegexEvent`] the query builder reads (regex + subject); the
//! concrete outcome of the recorded execution (`matched`,
//! `concrete_captures`) never influences a flip query and is not sent.

use expose_dse::sym::{RegexEvent, SymExpr};
use regex_syntax_es6::Regex;

use crate::json::{self, Value};

/// Serializes a symbolic expression as a compact tagged JSON array.
pub fn write_sym_expr(out: &mut String, e: &SymExpr) {
    use std::fmt::Write as _;
    match e {
        SymExpr::Input(k) => {
            let _ = write!(out, "[\"in\",{k}]");
        }
        SymExpr::StrLit(s) => {
            out.push_str("[\"lit\",");
            json::write_escaped(out, s);
            out.push(']');
        }
        SymExpr::Concat(items) => {
            out.push_str("[\"cat\",[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sym_expr(out, item);
            }
            out.push_str("]]");
        }
        SymExpr::Capture { event, index } => {
            let _ = write!(out, "[\"cap\",{event},{index}]");
        }
        SymExpr::BoolLit(b) => {
            let _ = write!(out, "[\"bool\",{b}]");
        }
        SymExpr::StrEq(a, b) => {
            out.push_str("[\"eq\",");
            write_sym_expr(out, a);
            out.push(',');
            write_sym_expr(out, b);
            out.push(']');
        }
        SymExpr::Not(inner) => {
            out.push_str("[\"not\",");
            write_sym_expr(out, inner);
            out.push(']');
        }
        SymExpr::And(a, b) => {
            out.push_str("[\"and\",");
            write_sym_expr(out, a);
            out.push(',');
            write_sym_expr(out, b);
            out.push(']');
        }
        SymExpr::Or(a, b) => {
            out.push_str("[\"or\",");
            write_sym_expr(out, a);
            out.push(',');
            write_sym_expr(out, b);
            out.push(']');
        }
        SymExpr::TestResult { event } => {
            let _ = write!(out, "[\"test\",{event}]");
        }
        SymExpr::CaptureDefined { event, index } => {
            let _ = write!(out, "[\"capdef\",{event},{index}]");
        }
    }
}

/// Serializes a regex event as `{"regex":…,"flags":…,"subject":…}`.
pub fn write_event(out: &mut String, event: &RegexEvent) {
    out.push_str("{\"regex\":");
    json::write_escaped(out, &event.regex.source);
    out.push_str(",\"flags\":");
    json::write_escaped(out, &event.regex.flags.to_string());
    out.push_str(",\"subject\":");
    write_sym_expr(out, &event.subject);
    out.push('}');
}

fn arr_usize(v: &Value, what: &str) -> Result<usize, String> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

/// Parses a tagged-array symbolic expression.
pub fn parse_sym_expr(v: &Value) -> Result<SymExpr, String> {
    let Value::Arr(items) = v else {
        return Err("expression must be a tagged array".into());
    };
    let tag = items
        .first()
        .and_then(Value::as_str)
        .ok_or("expression array must start with a string tag")?;
    let arity = |n: usize| -> Result<(), String> {
        if items.len() == n + 1 {
            Ok(())
        } else {
            Err(format!("\"{tag}\" takes {n} operand(s)"))
        }
    };
    match tag {
        "in" => {
            arity(1)?;
            Ok(SymExpr::Input(arr_usize(&items[1], "\"in\" operand")?))
        }
        "lit" => {
            arity(1)?;
            let s = items[1]
                .as_str()
                .ok_or("\"lit\" operand must be a string")?;
            Ok(SymExpr::StrLit(s.to_string()))
        }
        "cat" => {
            arity(1)?;
            let Value::Arr(parts) = &items[1] else {
                return Err("\"cat\" operand must be an array".into());
            };
            let parts: Result<Vec<SymExpr>, String> = parts.iter().map(parse_sym_expr).collect();
            Ok(SymExpr::Concat(parts?))
        }
        "cap" => {
            arity(2)?;
            Ok(SymExpr::Capture {
                event: arr_usize(&items[1], "\"cap\" event")?,
                index: arr_usize(&items[2], "\"cap\" index")?,
            })
        }
        "bool" => {
            arity(1)?;
            let b = items[1]
                .as_bool()
                .ok_or("\"bool\" operand must be a boolean")?;
            Ok(SymExpr::BoolLit(b))
        }
        "eq" => {
            arity(2)?;
            Ok(SymExpr::StrEq(
                Box::new(parse_sym_expr(&items[1])?),
                Box::new(parse_sym_expr(&items[2])?),
            ))
        }
        "not" => {
            arity(1)?;
            Ok(SymExpr::Not(Box::new(parse_sym_expr(&items[1])?)))
        }
        "and" => {
            arity(2)?;
            Ok(SymExpr::And(
                Box::new(parse_sym_expr(&items[1])?),
                Box::new(parse_sym_expr(&items[2])?),
            ))
        }
        "or" => {
            arity(2)?;
            Ok(SymExpr::Or(
                Box::new(parse_sym_expr(&items[1])?),
                Box::new(parse_sym_expr(&items[2])?),
            ))
        }
        "test" => {
            arity(1)?;
            Ok(SymExpr::TestResult {
                event: arr_usize(&items[1], "\"test\" event")?,
            })
        }
        "capdef" => {
            arity(2)?;
            Ok(SymExpr::CaptureDefined {
                event: arr_usize(&items[1], "\"capdef\" event")?,
                index: arr_usize(&items[2], "\"capdef\" index")?,
            })
        }
        other => Err(format!("unknown expression tag {other:?}")),
    }
}

/// Parses a regex event object. The regex is re-parsed from its source
/// and flags; `matched`/`concrete_captures` default to their neutral
/// values (the query builder never reads them).
pub fn parse_event(v: &Value) -> Result<RegexEvent, String> {
    let source = v
        .get("regex")
        .and_then(Value::as_str)
        .ok_or("event requires a \"regex\" string")?;
    let flags = match v.get("flags").and_then(Value::as_str) {
        None => regex_syntax_es6::Flags::empty(),
        Some(s) => s.parse().map_err(|e| format!("event flags {s:?}: {e}"))?,
    };
    let regex = Regex::new(source, flags).map_err(|e| format!("event regex {source:?}: {e}"))?;
    let subject = parse_sym_expr(
        v.get("subject")
            .ok_or("event requires a \"subject\" expression")?,
    )
    .map_err(|e| format!("event subject: {e}"))?;
    Ok(RegexEvent {
        regex,
        subject,
        matched: false,
        concrete_captures: Vec::new(),
    })
}

/// The highest event index referenced by an expression, if any.
pub fn max_referenced_event(e: &SymExpr) -> Option<usize> {
    let mut refs = Vec::new();
    e.referenced_events(&mut refs);
    refs.into_iter().max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &SymExpr) -> SymExpr {
        let mut s = String::new();
        write_sym_expr(&mut s, e);
        parse_sym_expr(&json::parse(&s).expect("valid JSON")).expect("parses back")
    }

    #[test]
    fn expressions_roundtrip() {
        let exprs = vec![
            SymExpr::Input(3),
            SymExpr::StrLit("a\"b\\c\n".into()),
            SymExpr::Concat(vec![SymExpr::Input(0), SymExpr::StrLit("-".into())]),
            SymExpr::Capture { event: 2, index: 1 },
            SymExpr::BoolLit(true),
            SymExpr::StrEq(
                Box::new(SymExpr::Input(0)),
                Box::new(SymExpr::StrLit("k".into())),
            ),
            SymExpr::Not(Box::new(SymExpr::TestResult { event: 0 })),
            SymExpr::And(
                Box::new(SymExpr::BoolLit(false)),
                Box::new(SymExpr::Or(
                    Box::new(SymExpr::TestResult { event: 1 }),
                    Box::new(SymExpr::CaptureDefined { event: 1, index: 0 }),
                )),
            ),
        ];
        for e in &exprs {
            assert_eq!(&roundtrip(e), e, "{e:?}");
        }
    }

    #[test]
    fn events_roundtrip_regex_and_subject() {
        let regex = Regex::new("^a+$", "gi".parse().expect("flags")).expect("regex");
        let event = RegexEvent {
            regex,
            subject: SymExpr::Concat(vec![SymExpr::Input(0), SymExpr::StrLit("x".into())]),
            matched: true,
            concrete_captures: vec![Some("aa".into())],
        };
        let mut s = String::new();
        write_event(&mut s, &event);
        let back = parse_event(&json::parse(&s).expect("valid JSON")).expect("parses back");
        assert_eq!(back.regex.source, "^a+$");
        assert_eq!(back.regex.flags.to_string(), "gi");
        assert_eq!(back.subject, event.subject);
    }

    #[test]
    fn malformed_expressions_are_rejected() {
        for bad in [
            r#"{"k":1}"#,
            r#"[1,2]"#,
            r#"["warp",0]"#,
            r#"["in"]"#,
            r#"["in","x"]"#,
            r#"["eq",["in",0]]"#,
            r#"["lit",7]"#,
        ] {
            let v = json::parse(bad).expect("valid JSON");
            assert!(parse_sym_expr(&v).is_err(), "{bad}");
        }
        let v = json::parse(r#"{"regex":"+invalid","flags":"","subject":["in",0]}"#).unwrap();
        assert!(parse_event(&v).is_err(), "invalid regex must be rejected");
        let v = json::parse(r#"{"regex":"a","flags":"zz","subject":["in",0]}"#).unwrap();
        assert!(parse_event(&v).is_err(), "invalid flags must be rejected");
    }

    #[test]
    fn max_referenced_event_walks_the_tree() {
        let e = SymExpr::And(
            Box::new(SymExpr::TestResult { event: 4 }),
            Box::new(SymExpr::StrEq(
                Box::new(SymExpr::Capture { event: 7, index: 0 }),
                Box::new(SymExpr::Input(0)),
            )),
        );
        assert_eq!(max_referenced_event(&e), Some(7));
        assert_eq!(max_referenced_event(&SymExpr::Input(0)), None);
    }
}

//! The NDJSON request/response protocol, versions 1 and 2.
//!
//! One JSON object per line in both directions. A request may carry a
//! `"v"` version field: absent (or `1`) selects the original v1
//! protocol, `2` selects the session-oriented v2. Whole-program
//! requests work under either version:
//!
//! ```json
//! {"type":"submit","name":"lib1","program":"function f(x){...}","entry":"f",
//!  "arity":1,"harness":"strings","support":"refinement","max_executions":40,
//!  "max_steps":50000,"seed":24301,"ack":false}
//! {"type":"status"}
//! {"type":"stats"}
//! {"type":"shutdown"}
//! ```
//!
//! v2 adds the streaming *session* verbs (`open_session`, `push`,
//! `pop`, `solve`, `close_session`), which pose flip queries against a
//! server-side assumption stack as the trace grows — see the README's
//! "Wire protocol v2" section for the full reference. Every response
//! line starts with the version it answers in (`"v":1` or `"v":2`),
//! and every failure path carries a stable [`ErrorCode`]: v1 errors
//! keep their legacy `message` key (plus the new `code`), v2 errors use
//! `{"v":2,"type":"error","code":…,"msg":…}`.
//!
//! **Determinism contract:** `result` lines carry only fields that are
//! invariant under scheduling — coverage, executions, generated tests,
//! bugs, query verdict counts and the verdict-trail digest — and
//! `solved` lines only verdict-trail fields plus the model inputs.
//! Wall-clock and cache hit/miss splits deliberately live in `stats`
//! instead: the `result` stream of a session is byte-identical for any
//! worker count (`crates/service/tests/service_differential.rs`,
//! `crates/service/tests/streaming_differential.rs` and the
//! `service-smoke` CI job enforce this).

use expose_core::SupportLevel;
use expose_dse::sched::{Completion, LatencySnapshot, Progress, ShardStats};
use expose_dse::sym::{RegexEvent, SymExpr};
use expose_dse::Report;

use crate::json::{self, Value};
use crate::wire;

/// The wire protocol version a request was posed in (and its response
/// lines answer in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoVersion {
    /// The original whole-program protocol; selected by an absent `"v"`
    /// field (or an explicit `"v":1`).
    #[default]
    V1,
    /// The versioned session protocol (`"v":2`).
    V2,
}

impl ProtoVersion {
    /// The number rendered into the `"v"` field of response lines.
    pub fn number(self) -> u8 {
        match self {
            ProtoVersion::V1 => 1,
            ProtoVersion::V2 => 2,
        }
    }
}

/// Stable machine-readable error codes — the `code` field of every
/// `error` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON.
    MalformedJson,
    /// The line is JSON but a field is missing or has the wrong shape.
    BadRequest,
    /// Unknown `type` verb.
    UnknownVerb,
    /// Unsupported `"v"` value, or a session verb posed without
    /// `"v":2`.
    UnsupportedVersion,
    /// A `push` carried an unparsable regex event, or referenced an
    /// event index beyond the session's event table.
    BadEvent,
    /// A session verb arrived with no session open on the connection.
    NoSession,
    /// `open_session` while the connection already has one open.
    SessionOpen,
    /// `pop` at depth 0, or `solve` at a depth with no pushed clause.
    BadDepth,
    /// A `push` would exceed the configured `max_session_depth`.
    DepthLimit,
    /// Admission control shed the request or connection: the server is
    /// at its concurrent-connection cap, or load shedding rejected a
    /// submit at the in-flight bound. Retry later.
    Overloaded,
    /// The server is draining (SIGTERM or an operator drain): it is
    /// finishing in-flight work and accepts no new connections or
    /// submissions.
    Draining,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::BadEvent => "bad_event",
            ErrorCode::NoSession => "no_session",
            ErrorCode::SessionOpen => "session_open",
            ErrorCode::BadDepth => "bad_depth",
            ErrorCode::DepthLimit => "depth_limit",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Draining => "draining",
        }
    }
}

/// A structured request failure: a stable code, a human-readable
/// message, and the protocol version the error line should answer in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// Version of the failing request (best guess for unparsable
    /// lines: V1, matching unversioned clients).
    pub version: ProtoVersion,
}

impl RequestError {
    /// Builds an error with the given code/message/version.
    pub fn new(code: ErrorCode, message: impl Into<String>, version: ProtoVersion) -> RequestError {
        RequestError {
            code,
            message: message.into(),
            version,
        }
    }
}

/// How the entry function's arguments are built (mirrors
/// `expose_dse::Harness` constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessKind {
    /// `n` symbolic string arguments.
    Strings,
    /// One array of `n` symbolic strings.
    StringArray,
}

/// A parsed `submit` request.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Job label; defaults to `job<id>` at submission.
    pub name: Option<String>,
    /// Mini-JS program source.
    pub program: String,
    /// Entry function name (default `f`).
    pub entry: String,
    /// Entry arity (default 1).
    pub arity: usize,
    /// Argument construction (default [`HarnessKind::Strings`]).
    pub harness: HarnessKind,
    /// Engine override: regex support level (absent = the session's
    /// configured default).
    pub support: Option<SupportLevel>,
    /// Engine override: maximum concrete executions.
    pub max_executions: Option<usize>,
    /// Engine override: interpreter step budget.
    pub max_steps: Option<u64>,
    /// Engine override: clause flips per trace.
    pub max_flips: Option<usize>,
    /// Engine override: bucket-sampling seed.
    pub seed: Option<u64>,
    /// Engine override: per-trace flip-solving workers.
    pub flip_workers: Option<usize>,
    /// Emit an immediate `accepted` line (off by default: acks are
    /// written when the request is read, so they interleave with the
    /// result stream nondeterministically).
    pub ack: bool,
}

/// A parsed `explore` request (v2): one pure-concolic exploration run
/// (see [`expose_dse::explore()`]), streamed as per-iteration
/// `explore_progress` lines plus a final `explore_result` line.
#[derive(Debug, Clone)]
pub struct ExploreRequest {
    /// Run label; defaults to `explore<id>`.
    pub name: Option<String>,
    /// Mini-JS program source.
    pub program: String,
    /// Entry function name (default `f`).
    pub entry: String,
    /// Entry arity (default 1).
    pub arity: usize,
    /// Argument construction (default [`HarnessKind::Strings`]).
    pub harness: HarnessKind,
    /// Engine override: regex support level.
    pub support: Option<SupportLevel>,
    /// Engine override: interpreter step budget.
    pub max_steps: Option<u64>,
    /// Engine override: clause flips per trace.
    pub max_flips: Option<usize>,
    /// Engine override: per-trace flip-solving workers.
    pub flip_workers: Option<usize>,
    /// Exploration iteration budget (absent = the orchestrator
    /// default).
    pub iterations: Option<usize>,
    /// Corpus-size budget (absent = the orchestrator default).
    pub max_corpus: Option<usize>,
}

/// A parsed `open_session` request (v2).
#[derive(Debug, Clone)]
pub struct OpenSessionRequest {
    /// Session label; defaults to `session<id>`.
    pub name: Option<String>,
    /// Regex support level override (absent = the service default).
    pub support: Option<SupportLevel>,
    /// How many concrete inputs the recorded trace consumed — controls
    /// the padding of SAT input vectors, exactly like a whole-program
    /// trace's `inputs_used`.
    pub inputs_used: usize,
    /// Per-session depth-limit override, clamped by the service's
    /// configured `max_session_depth` (a tenant can only lower the
    /// cap).
    pub max_depth: Option<usize>,
}

/// A parsed `push` request (v2): one taken path-condition clause plus
/// the regex events it (or later clauses) will reference.
#[derive(Debug, Clone)]
pub struct PushRequest {
    /// New regex events, appended to the session's event table in
    /// order. Event indices in expressions refer to that table.
    pub events: Vec<RegexEvent>,
    /// The clause's branch condition.
    pub cond: SymExpr,
    /// The direction concretely taken.
    pub taken: bool,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit one DSE job.
    Submit(Box<SubmitRequest>),
    /// Report session progress counters.
    Status,
    /// Report cache and shard statistics.
    Stats,
    /// Report the full observability snapshot: scheduler queue depths,
    /// latency quantiles, caches, lifetime totals, admission counters.
    Metrics,
    /// Close the session: drain queued jobs, then finish the stream.
    Shutdown,
    /// Open a streaming solve session on this connection (v2).
    OpenSession(Box<OpenSessionRequest>),
    /// Push one taken clause onto the open session's stack (v2).
    Push(Box<PushRequest>),
    /// Retract the most recently pushed clause (v2).
    Pop,
    /// Solve the flip of clause `depth` against the prefix `0..depth`
    /// (v2).
    Solve {
        /// Clause index to flip (0-based; must be below the session
        /// depth).
        depth: usize,
    },
    /// Close the open streaming session (v2).
    CloseSession,
    /// Run one pure-concolic exploration loop, streaming per-iteration
    /// progress (v2).
    Explore(Box<ExploreRequest>),
}

fn parse_support(s: &str) -> Result<SupportLevel, String> {
    match s {
        "concrete" => Ok(SupportLevel::Concrete),
        "modeling" => Ok(SupportLevel::Modeling),
        "captures" => Ok(SupportLevel::Captures),
        "refinement" => Ok(SupportLevel::Refinement),
        other => Err(format!(
            "unknown support level {other:?} (expected concrete|modeling|captures|refinement)"
        )),
    }
}

fn parse_harness(s: &str) -> Result<HarnessKind, String> {
    match s {
        "strings" => Ok(HarnessKind::Strings),
        "string-array" | "string_array" => Ok(HarnessKind::StringArray),
        other => Err(format!(
            "unknown harness {other:?} (expected strings|string-array)"
        )),
    }
}

fn opt_str(value: &Value, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("{key} must be a string")),
    }
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

/// Parses one request line, returning the request and the protocol
/// version it was posed in. Failures carry a stable [`ErrorCode`] plus
/// the best-guess version for rendering the error line.
pub fn parse_request(line: &str) -> Result<(Request, ProtoVersion), RequestError> {
    let value = json::parse(line).map_err(|e| {
        RequestError::new(
            ErrorCode::MalformedJson,
            format!("malformed JSON: {e}"),
            ProtoVersion::V1,
        )
    })?;
    let version = match value.get("v") {
        None => ProtoVersion::V1,
        Some(v) => match v.as_u64() {
            Some(1) => ProtoVersion::V1,
            Some(2) => ProtoVersion::V2,
            _ => {
                return Err(RequestError::new(
                    ErrorCode::UnsupportedVersion,
                    "unsupported protocol version (expected \"v\":1 or \"v\":2)",
                    ProtoVersion::V2,
                ))
            }
        },
    };
    let bad = |message: String| RequestError::new(ErrorCode::BadRequest, message, version);
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| RequestError::new(ErrorCode::BadRequest, "missing \"type\"", version))?;
    let request = match kind {
        "submit" => {
            let program = opt_str(&value, "program")
                .map_err(&bad)?
                .ok_or_else(|| bad("submit requires \"program\"".to_string()))?;
            let support = match opt_str(&value, "support").map_err(&bad)? {
                Some(s) => Some(parse_support(&s).map_err(&bad)?),
                None => None,
            };
            let harness = match opt_str(&value, "harness").map_err(&bad)? {
                Some(s) => parse_harness(&s).map_err(&bad)?,
                None => HarnessKind::Strings,
            };
            Request::Submit(Box::new(SubmitRequest {
                name: opt_str(&value, "name").map_err(&bad)?,
                program,
                entry: opt_str(&value, "entry")
                    .map_err(&bad)?
                    .unwrap_or_else(|| "f".to_string()),
                arity: opt_u64(&value, "arity").map_err(&bad)?.unwrap_or(1) as usize,
                harness,
                support,
                max_executions: opt_u64(&value, "max_executions")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                max_steps: opt_u64(&value, "max_steps").map_err(&bad)?,
                max_flips: opt_u64(&value, "max_flips")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                seed: opt_u64(&value, "seed").map_err(&bad)?,
                flip_workers: opt_u64(&value, "flip_workers")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                ack: value.get("ack").and_then(Value::as_bool).unwrap_or(false),
            }))
        }
        "status" => Request::Status,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "shutdown" => Request::Shutdown,
        "open_session" | "push" | "pop" | "solve" | "close_session" | "explore"
            if version != ProtoVersion::V2 =>
        {
            return Err(RequestError::new(
                ErrorCode::UnsupportedVersion,
                format!("{kind:?} is a protocol-v2 verb; send it with \"v\":2"),
                version,
            ))
        }
        "open_session" => {
            let support = match opt_str(&value, "support").map_err(&bad)? {
                Some(s) => Some(parse_support(&s).map_err(&bad)?),
                None => None,
            };
            Request::OpenSession(Box::new(OpenSessionRequest {
                name: opt_str(&value, "name").map_err(&bad)?,
                support,
                inputs_used: opt_u64(&value, "inputs_used").map_err(&bad)?.unwrap_or(0) as usize,
                max_depth: opt_u64(&value, "max_depth")
                    .map_err(&bad)?
                    .map(|n| n as usize),
            }))
        }
        "push" => {
            let events = match value.get("events") {
                None | Some(Value::Null) => Vec::new(),
                Some(Value::Arr(items)) => {
                    let mut events = Vec::with_capacity(items.len());
                    for item in items {
                        events.push(
                            wire::parse_event(item)
                                .map_err(|e| RequestError::new(ErrorCode::BadEvent, e, version))?,
                        );
                    }
                    events
                }
                Some(_) => return Err(bad("\"events\" must be an array".to_string())),
            };
            let cond = value
                .get("cond")
                .ok_or_else(|| bad("push requires a \"cond\" expression".to_string()))
                .and_then(|v| wire::parse_sym_expr(v).map_err(&bad))?;
            let taken = value
                .get("taken")
                .and_then(Value::as_bool)
                .ok_or_else(|| bad("push requires a boolean \"taken\"".to_string()))?;
            Request::Push(Box::new(PushRequest {
                events,
                cond,
                taken,
            }))
        }
        "pop" => Request::Pop,
        "solve" => {
            let depth = opt_u64(&value, "depth")
                .map_err(&bad)?
                .ok_or_else(|| bad("solve requires a \"depth\"".to_string()))?;
            Request::Solve {
                depth: depth as usize,
            }
        }
        "close_session" => Request::CloseSession,
        "explore" => {
            let program = opt_str(&value, "program")
                .map_err(&bad)?
                .ok_or_else(|| bad("explore requires \"program\"".to_string()))?;
            let support = match opt_str(&value, "support").map_err(&bad)? {
                Some(s) => Some(parse_support(&s).map_err(&bad)?),
                None => None,
            };
            let harness = match opt_str(&value, "harness").map_err(&bad)? {
                Some(s) => parse_harness(&s).map_err(&bad)?,
                None => HarnessKind::Strings,
            };
            Request::Explore(Box::new(ExploreRequest {
                name: opt_str(&value, "name").map_err(&bad)?,
                program,
                entry: opt_str(&value, "entry")
                    .map_err(&bad)?
                    .unwrap_or_else(|| "f".to_string()),
                arity: opt_u64(&value, "arity").map_err(&bad)?.unwrap_or(1) as usize,
                harness,
                support,
                max_steps: opt_u64(&value, "max_steps").map_err(&bad)?,
                max_flips: opt_u64(&value, "max_flips")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                flip_workers: opt_u64(&value, "flip_workers")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                iterations: opt_u64(&value, "iterations")
                    .map_err(&bad)?
                    .map(|n| n as usize),
                max_corpus: opt_u64(&value, "max_corpus")
                    .map_err(&bad)?
                    .map(|n| n as usize),
            }))
        }
        other => {
            return Err(RequestError::new(
                ErrorCode::UnknownVerb,
                format!("unknown request type {other:?}"),
                version,
            ))
        }
    };
    Ok((request, version))
}

/// Incremental FNV-1a 64 digest over a verdict trail: one `(sat,
/// refinements, limit_hit)` record per query, in clause order. The
/// streamed `--replay-stream` checker folds `solved` responses into one
/// of these and compares against [`verdict_digest`] of the
/// whole-program report — byte-identity of the two trails is the
/// streaming determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerdictDigest(u64);

impl Default for VerdictDigest {
    fn default() -> VerdictDigest {
        VerdictDigest::new()
    }
}

impl VerdictDigest {
    /// The FNV-1a 64 offset basis.
    pub fn new() -> VerdictDigest {
        VerdictDigest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one query verdict into the digest.
    pub fn update(&mut self, sat: bool, refinements: u64, limit_hit: bool) {
        let mut eat = |byte: u8| {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(u8::from(sat));
        for b in refinements.to_le_bytes() {
            eat(b);
        }
        eat(u8::from(limit_hit));
    }

    /// The digest value so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a 64 digest of a report's verdict trail (see
/// [`VerdictDigest`]). The trail is deterministic per job (caches are
/// verdict-preserving), so the digest lets two runs be compared without
/// shipping every record.
pub fn verdict_digest(report: &Report) -> u64 {
    let mut digest = VerdictDigest::new();
    for q in &report.queries {
        digest.update(q.sat, q.refinements as u64, q.limit_hit);
    }
    digest.finish()
}

fn open_versioned(out: &mut String, version: ProtoVersion) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"v\":{}", version.number());
}

/// Renders one `result` line (without trailing newline). Deterministic
/// fields only — see the module docs.
pub fn result_line(completion: &Completion, version: ProtoVersion) -> String {
    let mut out = String::with_capacity(160);
    open_versioned(&mut out, version);
    out.push_str(",\"type\":\"result\",\"job\":");
    out.push_str(&completion.id.to_string());
    out.push_str(",\"name\":");
    json::write_escaped(&mut out, &completion.name);
    match &completion.outcome {
        Err(message) => {
            out.push_str(",\"error\":");
            json::write_escaped(&mut out, message);
        }
        Ok(report) => {
            use std::fmt::Write as _;
            let sat = report.queries.iter().filter(|q| q.sat).count();
            let refinements: usize = report.queries.iter().map(|q| q.refinements).sum();
            let limit_hits = report.queries.iter().filter(|q| q.limit_hit).count();
            let _ = write!(
                out,
                ",\"stmts\":{},\"covered\":{},\"coverage\":{:.4},\"executions\":{},\
                 \"tests\":{},\"queries\":{},\"sat_queries\":{sat},\"refinements\":{refinements},\
                 \"limit_hits\":{limit_hits},\"verdicts\":\"{:016x}\"",
                report.stmt_count,
                report.coverage.len(),
                report.coverage_fraction(),
                report.executions,
                report.tests_generated,
                report.queries.len(),
                verdict_digest(report),
            );
            out.push_str(",\"bugs\":[");
            for (i, (stmt, inputs)) in report.bugs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{stmt},[");
                for (j, input) in inputs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, input);
                }
                out.push_str("]]");
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Renders a structured `error` line. Both versions carry the stable
/// `code`; v1 keeps its legacy `message` key, v2 uses `msg`.
pub fn error_line(error: &RequestError) -> String {
    match error.version {
        ProtoVersion::V1 => format!(
            "{{\"v\":1,\"type\":\"error\",\"code\":\"{}\",\"message\":{}}}",
            error.code.as_str(),
            json::escaped(&error.message)
        ),
        ProtoVersion::V2 => format!(
            "{{\"v\":2,\"type\":\"error\",\"code\":\"{}\",\"msg\":{}}}",
            error.code.as_str(),
            json::escaped(&error.message)
        ),
    }
}

/// Renders a `status` line from a progress snapshot.
pub fn status_line(progress: &Progress, workers: usize, version: ProtoVersion) -> String {
    format!(
        "{{\"v\":{},\"type\":\"status\",\"workers\":{workers},\"submitted\":{},\"drained\":{},\
         \"inflight\":{},\"resequencing\":{}}}",
        version.number(),
        progress.submitted,
        progress.drained,
        progress.inflight,
        progress.resequencing
    )
}

/// Cache counters for a `stats` line.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCounters {
    /// Regex-model cache hits / misses.
    pub model: (u64, u64),
    /// Solver query-cache hits / misses.
    pub query: (u64, u64),
    /// CEGAR verdict-cache replays / misses.
    pub verdicts: (u64, u64),
    /// DFA-table hits / misses.
    pub dfa: (u64, u64),
    /// Approximate resident bytes of the model / query / verdict
    /// caches (the byte-budget accounting of long-lived sessions).
    pub bytes: (u64, u64, u64),
    /// Entries evicted so far from the model / query / verdict caches
    /// (capacity- or budget-driven).
    pub evictions: (u64, u64, u64),
    /// Counters of the connection's active streaming session, if one is
    /// open when the `stats` request arrives.
    pub session: Option<SessionCounters>,
}

/// Per-session counters rendered into `stats` lines while a streaming
/// session is open.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionCounters {
    /// Session id on this connection.
    pub id: u64,
    /// Current frame depth (pushed clauses minus pops).
    pub depth: u64,
    /// Flip queries assembled so far (session lifetime).
    pub solves: u64,
    /// Prefix frames reused across those queries instead of being
    /// re-canonicalized.
    pub prefix_reuse_hits: u64,
}

/// Connection-lifetime streaming-session totals: unlike the `session`
/// object of a `stats` line (which vanishes when the session closes),
/// these accumulate across every session the connection ran, so a
/// drain-time report is complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifetimeCounters {
    /// Streaming sessions opened on this connection.
    pub sessions_opened: u64,
    /// Streaming sessions closed (the rest are still open).
    pub sessions_closed: u64,
    /// Flip queries solved across all sessions, open and closed.
    pub solves: u64,
    /// Prefix frames reused across those queries.
    pub prefix_reuse_hits: u64,
}

/// Admission-control counters of the multi-connection front-end,
/// rendered into `metrics` lines when the session runs under one.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionCounters {
    /// Connections currently being served.
    pub active: u64,
    /// Connections admitted since the server started.
    pub accepted: u64,
    /// Connections refused with `overloaded`.
    pub rejected_overloaded: u64,
    /// Connections refused with `draining`.
    pub rejected_draining: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

/// Everything a `metrics` line reports. Latency quantiles come from the
/// scheduler's lock-free histogram ([`LatencySnapshot`]); like `stats`,
/// the whole line is observability data, never part of the
/// deterministic result stream.
#[derive(Debug, Clone)]
pub struct MetricsReport<'a> {
    /// Scheduler progress (queue depths included).
    pub progress: Progress,
    /// Worker shard count.
    pub workers: usize,
    /// Result lines emitted so far on this connection.
    pub jobs: u64,
    /// Error lines emitted so far on this connection.
    pub request_errors: u64,
    /// Per-job wall-time quantiles from the scheduler.
    pub job_latency: LatencySnapshot,
    /// Per-`solve` wall-time quantiles from the streaming sessions.
    pub solve_latency: LatencySnapshot,
    /// Cache counters (same data as a `stats` line).
    pub caches: &'a CacheCounters,
    /// Per-shard scheduling counters.
    pub shards: &'a [ShardStats],
    /// Connection-lifetime session totals.
    pub lifetime: LifetimeCounters,
    /// Admission counters when serving under a socket front-end.
    pub server: Option<AdmissionCounters>,
    /// The effective `ServiceConfig`, as a rendered JSON object.
    pub config_json: &'a str,
}

fn write_cache_counters(out: &mut String, caches: &CacheCounters) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"model_cache\":[{},{}],\"query_cache\":[{},{}],\
         \"verdict_cache\":[{},{}],\"dfa_tables\":[{},{}],\
         \"cache_bytes\":[{},{},{}],\"cache_evictions\":[{},{},{}]",
        caches.model.0,
        caches.model.1,
        caches.query.0,
        caches.query.1,
        caches.verdicts.0,
        caches.verdicts.1,
        caches.dfa.0,
        caches.dfa.1,
        caches.bytes.0,
        caches.bytes.1,
        caches.bytes.2,
        caches.evictions.0,
        caches.evictions.1,
        caches.evictions.2,
    );
}

fn write_shards(out: &mut String, shards: &[ShardStats]) {
    use std::fmt::Write as _;
    out.push_str("\"shards\":[");
    for (i, shard) in shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"jobs\":{},\"local\":{},\"injector\":{},\"steals\":{}}}",
            shard.jobs_run, shard.local_pops, shard.injector_claims, shard.steals
        );
    }
    out.push(']');
}

fn write_session(out: &mut String, session: &Option<SessionCounters>) {
    use std::fmt::Write as _;
    if let Some(session) = session {
        let _ = write!(
            out,
            ",\"session\":{{\"id\":{},\"depth\":{},\"solves\":{},\"prefix_reuse_hits\":{}}}",
            session.id, session.depth, session.solves, session.prefix_reuse_hits
        );
    }
}

fn write_lifetime(out: &mut String, lifetime: &LifetimeCounters) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"lifetime\":{{\"sessions_opened\":{},\"sessions_closed\":{},\
         \"solves\":{},\"prefix_reuse_hits\":{}}}",
        lifetime.sessions_opened,
        lifetime.sessions_closed,
        lifetime.solves,
        lifetime.prefix_reuse_hits
    );
}

fn write_latency(out: &mut String, key: &str, latency: &LatencySnapshot) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "\"{key}\":{{\"count\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3}}}",
        latency.count,
        latency.p50_ms(),
        latency.p99_ms(),
        latency.max_ms()
    );
}

/// Renders a `stats` line (scheduling-dependent observability data —
/// never part of the deterministic result stream).
pub fn stats_line(
    caches: &CacheCounters,
    shards: &[ShardStats],
    lifetime: &LifetimeCounters,
    config_json: &str,
    version: ProtoVersion,
) -> String {
    let mut out = String::with_capacity(256);
    open_versioned(&mut out, version);
    out.push_str(",\"type\":\"stats\",");
    write_cache_counters(&mut out, caches);
    out.push(',');
    write_shards(&mut out, shards);
    write_session(&mut out, &caches.session);
    out.push(',');
    write_lifetime(&mut out, lifetime);
    out.push_str(",\"config\":");
    out.push_str(config_json);
    out.push('}');
    out
}

/// Renders a `metrics` line — the observability endpoint of the
/// service.
pub fn metrics_line(report: &MetricsReport<'_>, version: ProtoVersion) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(512);
    open_versioned(&mut out, version);
    let _ = write!(
        out,
        ",\"type\":\"metrics\",\"jobs\":{},\"request_errors\":{},\
         \"scheduler\":{{\"workers\":{},\"submitted\":{},\"drained\":{},\
         \"inflight\":{},\"resequencing\":{},\"queued\":{}}},",
        report.jobs,
        report.request_errors,
        report.workers,
        report.progress.submitted,
        report.progress.drained,
        report.progress.inflight,
        report.progress.resequencing,
        report.progress.queued,
    );
    write_latency(&mut out, "job_latency", &report.job_latency);
    out.push(',');
    write_latency(&mut out, "solve_latency", &report.solve_latency);
    out.push(',');
    write_cache_counters(&mut out, report.caches);
    out.push(',');
    write_shards(&mut out, report.shards);
    write_session(&mut out, &report.caches.session);
    out.push(',');
    write_lifetime(&mut out, &report.lifetime);
    if let Some(server) = &report.server {
        let _ = write!(
            out,
            ",\"server\":{{\"active\":{},\"accepted\":{},\"rejected_overloaded\":{},\
             \"rejected_draining\":{},\"draining\":{}}}",
            server.active,
            server.accepted,
            server.rejected_overloaded,
            server.rejected_draining,
            server.draining,
        );
    }
    out.push_str(",\"config\":");
    out.push_str(report.config_json);
    out.push('}');
    out
}

/// Renders the immediate ack for `"ack": true` submissions.
pub fn accepted_line(id: u64, name: &str, version: ProtoVersion) -> String {
    format!(
        "{{\"v\":{},\"type\":\"accepted\",\"job\":{id},\"name\":{}}}",
        version.number(),
        json::escaped(name)
    )
}

/// Renders the final line of a session's stream. `version` is the
/// highest version any request of the stream used.
pub fn done_line(jobs: u64, version: ProtoVersion) -> String {
    format!(
        "{{\"v\":{},\"type\":\"done\",\"jobs\":{jobs}}}",
        version.number()
    )
}

/// Renders the v2 `session_opened` response.
pub fn session_opened_line(id: u64, name: &str) -> String {
    format!(
        "{{\"v\":2,\"type\":\"session_opened\",\"session\":{id},\"name\":{}}}",
        json::escaped(name)
    )
}

/// Renders the v2 `pushed` response (`depth` = stack depth after the
/// push).
pub fn pushed_line(id: u64, depth: usize) -> String {
    format!("{{\"v\":2,\"type\":\"pushed\",\"session\":{id},\"depth\":{depth}}}")
}

/// Renders the v2 `popped` response (`depth` = stack depth after the
/// pop).
pub fn popped_line(id: u64, depth: usize) -> String {
    format!("{{\"v\":2,\"type\":\"popped\",\"session\":{id},\"depth\":{depth}}}")
}

/// Renders the v2 `solved` response. Deterministic fields only: the
/// verdict trail (`sat`/`refinements`/`limit_hit`), the prefix frames
/// the solve reused, and the SAT model's inputs (`null` when unsat).
pub fn solved_line(id: u64, depth: usize, result: &expose_dse::FlipResult) -> String {
    let mut out = String::with_capacity(128);
    use std::fmt::Write as _;
    let record = &result.record;
    let _ = write!(
        out,
        "{{\"v\":2,\"type\":\"solved\",\"session\":{id},\"depth\":{depth},\
         \"sat\":{},\"refinements\":{},\"limit_hit\":{},\"prefix_reuse\":{}",
        record.sat, record.refinements, record.limit_hit, record.prefix_reuse_hits
    );
    match &result.inputs {
        None => out.push_str(",\"inputs\":null"),
        Some(inputs) => {
            out.push_str(",\"inputs\":[");
            for (i, input) in inputs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_escaped(&mut out, input);
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Renders the v2 `session_closed` response with the session's
/// lifetime counters.
pub fn session_closed_line(id: u64, depth: usize, stats: strsolve::SessionStats) -> String {
    format!(
        "{{\"v\":2,\"type\":\"session_closed\",\"session\":{id},\"depth\":{depth},\
         \"solves\":{},\"prefix_reuse_hits\":{}}}",
        stats.solves, stats.prefix_reuse_hits
    )
}

/// Renders one v2 `explore_progress` line: the deterministic
/// per-iteration snapshot of an exploration run. Like `result` lines,
/// every field is scheduling- and worker-count-invariant, so the
/// progress stream of a run is byte-identical at any flip worker count
/// (the `explore-smoke` CI leg diffs it at 1/2/8).
pub fn explore_progress_line(id: u64, progress: &expose_dse::IterationProgress) -> String {
    format!(
        "{{\"v\":2,\"type\":\"explore_progress\",\"explore\":{id},\"iteration\":{},\
         \"seed\":{},\"seed_hash\":\"{:016x}\",\"new_inputs\":{},\"corpus\":{},\
         \"frontier\":{},\"unique_paths\":{},\"covered_stmts\":{},\
         \"covered_directions\":{},\"bugs\":{},\"queries\":{},\"sat_queries\":{}}}",
        progress.iteration,
        progress.seed,
        progress.seed_hash,
        progress.new_inputs,
        progress.corpus_size,
        progress.frontier,
        progress.unique_paths,
        progress.covered_stmts,
        progress.covered_directions,
        progress.bugs,
        progress.queries,
        progress.sat_queries,
    )
}

/// Renders the final v2 `explore_result` line of an exploration run:
/// totals, the stop reason, the corpus digest, and the whole-run
/// trajectory digest. Deterministic fields only, like `result` lines.
pub fn explore_result_line(id: u64, name: &str, report: &expose_dse::ExploreReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"v\":2,\"type\":\"explore_result\",\"explore\":{id},\"name\":{}",
        json::escaped(name)
    );
    let _ = write!(
        out,
        ",\"iterations\":{},\"stopped\":\"{}\",\"stmts\":{},\"covered\":{},\
         \"coverage\":{:.4},\"covered_directions\":{},\"unique_paths\":{},\
         \"corpus\":{},\"corpus_dropped\":{},\"queries\":{},\"sat_queries\":{}",
        report.iterations,
        report.stopped.as_str(),
        report.stmt_count,
        report.coverage.len(),
        report.coverage_fraction(),
        report.covered_directions,
        report.unique_paths,
        report.corpus.len(),
        report.corpus.dropped(),
        report.queries.len(),
        report.sat_queries(),
    );
    out.push_str(",\"bugs\":[");
    for (i, bug) in report.bugs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{},[", bug.stmt);
        for (j, input) in bug.inputs.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::write_escaped(&mut out, input);
        }
        out.push_str("]]");
    }
    let _ = write!(
        out,
        "],\"corpus_digest\":\"{:016x}\",\"trajectory\":\"{:016x}\"}}",
        report.corpus.digest(),
        report.trajectory_digest(),
    );
    out
}

/// Renders the v2 `explore_result` error shape for a run that could
/// not start (e.g. the program failed to parse).
pub fn explore_error_line(id: u64, name: &str, error: &str) -> String {
    format!(
        "{{\"v\":2,\"type\":\"explore_result\",\"explore\":{id},\"name\":{},\"error\":{}}}",
        json::escaped(name),
        json::escaped(error),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_submit() {
        let (request, version) =
            parse_request(r#"{"type":"submit","program":"function f(x){return x;}"}"#)
                .expect("parses");
        assert_eq!(version, ProtoVersion::V1, "unversioned = v1");
        let Request::Submit(submit) = request else {
            panic!("submit");
        };
        assert_eq!(submit.entry, "f");
        assert_eq!(submit.arity, 1);
        assert_eq!(submit.support, None, "absent = session default");
        assert_eq!(submit.harness, HarnessKind::Strings);
        assert!(!submit.ack);
    }

    #[test]
    fn parses_full_submit() {
        let line = r#"{"v":2,"type":"submit","name":"j","program":"function g(a,b){}","entry":"g",
            "arity":2,"harness":"string-array","support":"captures","max_executions":8,
            "max_steps":1000,"max_flips":4,"seed":7,"flip_workers":2,"ack":true}"#
            .replace('\n', " ");
        let (request, version) = parse_request(&line).expect("parses");
        assert_eq!(version, ProtoVersion::V2);
        let Request::Submit(submit) = request else {
            panic!("submit");
        };
        assert_eq!(submit.name.as_deref(), Some("j"));
        assert_eq!(submit.entry, "g");
        assert_eq!(submit.arity, 2);
        assert_eq!(submit.harness, HarnessKind::StringArray);
        assert_eq!(submit.support, Some(SupportLevel::Captures));
        assert_eq!(submit.max_executions, Some(8));
        assert_eq!(submit.max_steps, Some(1000));
        assert_eq!(submit.max_flips, Some(4));
        assert_eq!(submit.seed, Some(7));
        assert_eq!(submit.flip_workers, Some(2));
        assert!(submit.ack);
    }

    #[test]
    fn rejects_bad_requests_with_stable_codes() {
        let code = |line: &str| parse_request(line).expect_err("rejects").code;
        assert_eq!(code("not json"), ErrorCode::MalformedJson);
        assert_eq!(code(r#"{"type":"submit"}"#), ErrorCode::BadRequest);
        assert_eq!(code(r#"{"type":"warp"}"#), ErrorCode::UnknownVerb);
        assert_eq!(
            code(r#"{"type":"submit","program":"x","support":"quantum"}"#),
            ErrorCode::BadRequest
        );
        assert_eq!(code(r#"{"program":"x"}"#), ErrorCode::BadRequest);
        assert_eq!(
            code(r#"{"v":3,"type":"status"}"#),
            ErrorCode::UnsupportedVersion
        );
        assert_eq!(
            code(r#"{"v":"two","type":"status"}"#),
            ErrorCode::UnsupportedVersion
        );
    }

    #[test]
    fn parses_explore_requests() {
        let err = parse_request(r#"{"type":"explore","program":"function f(x){}"}"#)
            .expect_err("explore is v2-only");
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);

        let (request, version) = parse_request(
            r#"{"v":2,"type":"explore","name":"e","program":"function g(a){}","entry":"g",
                "iterations":5,"max_corpus":64,"flip_workers":2}"#
                .replace('\n', " ")
                .as_str(),
        )
        .expect("parses");
        assert_eq!(version, ProtoVersion::V2);
        let Request::Explore(explore) = request else {
            panic!("explore");
        };
        assert_eq!(explore.name.as_deref(), Some("e"));
        assert_eq!(explore.entry, "g");
        assert_eq!(explore.iterations, Some(5));
        assert_eq!(explore.max_corpus, Some(64));
        assert_eq!(explore.flip_workers, Some(2));
        assert_eq!(explore.support, None);

        let err = parse_request(r#"{"v":2,"type":"explore"}"#).expect_err("program required");
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn explore_lines_render() {
        let progress = expose_dse::IterationProgress {
            iteration: 2,
            seed: 1,
            seed_hash: 0xabcd,
            new_inputs: 3,
            corpus_size: 4,
            frontier: 3,
            unique_paths: 2,
            covered_stmts: 9,
            covered_directions: 4,
            bugs: 1,
            queries: 5,
            sat_queries: 3,
        };
        let line = explore_progress_line(0, &progress);
        crate::json::parse(&line).expect("valid JSON");
        assert_eq!(
            line,
            "{\"v\":2,\"type\":\"explore_progress\",\"explore\":0,\"iteration\":2,\
             \"seed\":1,\"seed_hash\":\"000000000000abcd\",\"new_inputs\":3,\"corpus\":4,\
             \"frontier\":3,\"unique_paths\":2,\"covered_stmts\":9,\
             \"covered_directions\":4,\"bugs\":1,\"queries\":5,\"sat_queries\":3}"
        );

        let error = explore_error_line(7, "bad", "parse: oops");
        crate::json::parse(&error).expect("valid JSON");
        assert_eq!(
            error,
            r#"{"v":2,"type":"explore_result","explore":7,"name":"bad","error":"parse: oops"}"#
        );

        let mut corpus = expose_dse::CorpusStore::new();
        corpus.insert(vec!["x".into()], vec![(1, true)], None);
        let report = expose_dse::ExploreReport {
            iterations: 1,
            stmt_count: 6,
            coverage: [1u32, 2, 3].into_iter().collect(),
            covered_directions: 2,
            unique_paths: 1,
            corpus,
            bugs: vec![expose_dse::ExploreBug {
                stmt: 4,
                inputs: vec!["\"q\"".into()],
                trail_digest: 9,
            }],
            progress: vec![progress],
            stopped: expose_dse::StopReason::Iterations,
            queries: Vec::new(),
        };
        let line = explore_result_line(3, "run", &report);
        crate::json::parse(&line).expect("valid JSON");
        assert!(
            line.starts_with(r#"{"v":2,"type":"explore_result","explore":3,"name":"run""#),
            "{line}"
        );
        assert!(line.contains(r#""stopped":"iterations""#), "{line}");
        assert!(line.contains(r#""bugs":[[4,["\"q\""]]]"#), "{line}");
        assert!(line.contains(r#""corpus_digest":""#), "{line}");
        assert!(line.contains(r#""trajectory":""#), "{line}");
    }

    #[test]
    fn session_verbs_require_v2() {
        for verb in ["open_session", "push", "pop", "solve", "close_session"] {
            let err = parse_request(&format!("{{\"type\":\"{verb}\"}}"))
                .expect_err("v1 session verb rejected");
            assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{verb}");
            assert_eq!(err.version, ProtoVersion::V1);
        }
        let (request, _) = parse_request(r#"{"v":2,"type":"pop"}"#).expect("v2 pop parses");
        assert!(matches!(request, Request::Pop));
    }

    #[test]
    fn parses_session_verbs() {
        let (request, _) = parse_request(
            r#"{"v":2,"type":"open_session","name":"t0","inputs_used":2,"support":"refinement"}"#,
        )
        .expect("parses");
        let Request::OpenSession(open) = request else {
            panic!("open_session");
        };
        assert_eq!(open.name.as_deref(), Some("t0"));
        assert_eq!(open.inputs_used, 2);
        assert_eq!(open.support, Some(SupportLevel::Refinement));

        let (request, _) = parse_request(
            r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
        )
        .expect("parses");
        let Request::Push(push) = request else {
            panic!("push");
        };
        assert_eq!(push.events.len(), 1);
        assert_eq!(push.events[0].regex.source, "^a+$");
        assert_eq!(push.cond, SymExpr::TestResult { event: 0 });
        assert!(push.taken);

        let (request, _) = parse_request(r#"{"v":2,"type":"solve","depth":3}"#).expect("parses");
        assert!(matches!(request, Request::Solve { depth: 3 }));

        let err = parse_request(r#"{"v":2,"type":"solve"}"#).expect_err("depth required");
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = parse_request(
            r#"{"v":2,"type":"push","events":[{"regex":"+","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
        )
        .expect_err("bad regex");
        assert_eq!(err.code, ErrorCode::BadEvent);
    }

    #[test]
    fn result_line_shapes() {
        let error = Completion {
            id: 3,
            name: "bad \"job\"".into(),
            outcome: Err("parse: oops".into()),
        };
        let line = result_line(&error, ProtoVersion::V1);
        assert_eq!(
            line,
            r#"{"v":1,"type":"result","job":3,"name":"bad \"job\"","error":"parse: oops"}"#
        );
        // Every rendered line must itself parse as JSON.
        crate::json::parse(&line).expect("valid JSON");

        let ok = Completion {
            id: 0,
            name: "w".into(),
            outcome: Ok(Report {
                stmt_count: 4,
                executions: 2,
                tests_generated: 1,
                bugs: vec![(2, vec!["<t>".into()])],
                ..Report::default()
            }),
        };
        let line = result_line(&ok, ProtoVersion::V2);
        crate::json::parse(&line).expect("valid JSON");
        assert!(line.starts_with(r#"{"v":2,"type":"result""#), "{line}");
        assert!(line.contains("\"bugs\":[[2,[\"<t>\"]]]"), "{line}");
        assert!(line.contains("\"verdicts\":\"cbf29ce484222325\""), "{line}");
    }

    #[test]
    fn error_lines_by_version() {
        let v1 = error_line(&RequestError::new(
            ErrorCode::MalformedJson,
            "bad",
            ProtoVersion::V1,
        ));
        assert_eq!(
            v1,
            r#"{"v":1,"type":"error","code":"malformed_json","message":"bad"}"#
        );
        let v2 = error_line(&RequestError::new(
            ErrorCode::BadDepth,
            "pop at depth 0",
            ProtoVersion::V2,
        ));
        assert_eq!(
            v2,
            r#"{"v":2,"type":"error","code":"bad_depth","msg":"pop at depth 0"}"#
        );
        crate::json::parse(&v1).expect("valid JSON");
        crate::json::parse(&v2).expect("valid JSON");
    }

    #[test]
    fn session_lines_render() {
        assert_eq!(
            session_opened_line(4, "t1"),
            r#"{"v":2,"type":"session_opened","session":4,"name":"t1"}"#
        );
        assert_eq!(
            pushed_line(4, 2),
            r#"{"v":2,"type":"pushed","session":4,"depth":2}"#
        );
        assert_eq!(
            popped_line(4, 1),
            r#"{"v":2,"type":"popped","session":4,"depth":1}"#
        );
        let sat = expose_dse::FlipResult {
            inputs: Some(vec!["a\"b".into(), String::new()]),
            record: expose_dse::QueryRecord {
                sat: true,
                refinements: 2,
                prefix_reuse_hits: 3,
                ..Default::default()
            },
        };
        assert_eq!(
            solved_line(4, 3, &sat),
            r#"{"v":2,"type":"solved","session":4,"depth":3,"sat":true,"refinements":2,"limit_hit":false,"prefix_reuse":3,"inputs":["a\"b",""]}"#
        );
        let unsat = expose_dse::FlipResult {
            inputs: None,
            record: expose_dse::QueryRecord::default(),
        };
        assert!(solved_line(0, 0, &unsat).contains("\"inputs\":null"));
        let closed = session_closed_line(
            4,
            1,
            strsolve::SessionStats {
                solves: 5,
                prefix_reuse_hits: 9,
            },
        );
        assert_eq!(
            closed,
            r#"{"v":2,"type":"session_closed","session":4,"depth":1,"solves":5,"prefix_reuse_hits":9}"#
        );
        crate::json::parse(&closed).expect("valid JSON");
    }

    #[test]
    fn digest_tracks_verdicts() {
        let mut report = Report::default();
        let base = verdict_digest(&report);
        report.queries.push(expose_dse::QueryRecord {
            sat: true,
            ..Default::default()
        });
        let one = verdict_digest(&report);
        assert_ne!(base, one);
        report.queries[0].refinements = 3;
        assert_ne!(one, verdict_digest(&report));
    }
}

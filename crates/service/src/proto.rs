//! The NDJSON request/response protocol.
//!
//! One JSON object per line in both directions. Requests:
//!
//! ```json
//! {"type":"submit","name":"lib1","program":"function f(x){...}","entry":"f",
//!  "arity":1,"harness":"strings","support":"refinement","max_executions":40,
//!  "max_steps":50000,"seed":24301,"ack":false}
//! {"type":"status"}
//! {"type":"stats"}
//! {"type":"shutdown"}
//! ```
//!
//! Every field of `submit` except `program` is optional. Responses are
//! `result` lines (one per job, re-sequenced by job id — see below),
//! plus `status`/`stats` answers, `error` lines for malformed
//! requests, and a final `done` line.
//!
//! **Determinism contract:** `result` lines carry only fields that are
//! invariant under scheduling — coverage, executions, generated tests,
//! bugs, query verdict counts and the verdict-trail digest. Wall-clock
//! and cache hit/miss splits deliberately live in `stats` instead: the
//! `result` stream of a session is byte-identical for any worker count
//! (`crates/service/tests/service_differential.rs` and the
//! `service-smoke` CI job enforce this).

use expose_core::SupportLevel;
use expose_dse::sched::{Completion, Progress, ShardStats};
use expose_dse::Report;

use crate::json::{self, Value};

/// How the entry function's arguments are built (mirrors
/// `expose_dse::Harness` constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessKind {
    /// `n` symbolic string arguments.
    Strings,
    /// One array of `n` symbolic strings.
    StringArray,
}

/// A parsed `submit` request.
#[derive(Debug, Clone)]
pub struct SubmitRequest {
    /// Job label; defaults to `job<id>` at submission.
    pub name: Option<String>,
    /// Mini-JS program source.
    pub program: String,
    /// Entry function name (default `f`).
    pub entry: String,
    /// Entry arity (default 1).
    pub arity: usize,
    /// Argument construction (default [`HarnessKind::Strings`]).
    pub harness: HarnessKind,
    /// Engine override: regex support level (absent = the session's
    /// configured default).
    pub support: Option<SupportLevel>,
    /// Engine override: maximum concrete executions.
    pub max_executions: Option<usize>,
    /// Engine override: interpreter step budget.
    pub max_steps: Option<u64>,
    /// Engine override: clause flips per trace.
    pub max_flips: Option<usize>,
    /// Engine override: bucket-sampling seed.
    pub seed: Option<u64>,
    /// Engine override: per-trace flip-solving workers.
    pub flip_workers: Option<usize>,
    /// Emit an immediate `accepted` line (off by default: acks are
    /// written when the request is read, so they interleave with the
    /// result stream nondeterministically).
    pub ack: bool,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Submit one DSE job.
    Submit(Box<SubmitRequest>),
    /// Report session progress counters.
    Status,
    /// Report cache and shard statistics.
    Stats,
    /// Close the session: drain queued jobs, then finish the stream.
    Shutdown,
}

fn parse_support(s: &str) -> Result<SupportLevel, String> {
    match s {
        "concrete" => Ok(SupportLevel::Concrete),
        "modeling" => Ok(SupportLevel::Modeling),
        "captures" => Ok(SupportLevel::Captures),
        "refinement" => Ok(SupportLevel::Refinement),
        other => Err(format!(
            "unknown support level {other:?} (expected concrete|modeling|captures|refinement)"
        )),
    }
}

fn parse_harness(s: &str) -> Result<HarnessKind, String> {
    match s {
        "strings" => Ok(HarnessKind::Strings),
        "string-array" | "string_array" => Ok(HarnessKind::StringArray),
        other => Err(format!(
            "unknown harness {other:?} (expected strings|string-array)"
        )),
    }
}

fn opt_str(value: &Value, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("{key} must be a string")),
    }
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let kind = value
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing \"type\"".to_string())?;
    match kind {
        "submit" => {
            let program = opt_str(&value, "program")?
                .ok_or_else(|| "submit requires \"program\"".to_string())?;
            let support = match opt_str(&value, "support")? {
                Some(s) => Some(parse_support(&s)?),
                None => None,
            };
            let harness = match opt_str(&value, "harness")? {
                Some(s) => parse_harness(&s)?,
                None => HarnessKind::Strings,
            };
            Ok(Request::Submit(Box::new(SubmitRequest {
                name: opt_str(&value, "name")?,
                program,
                entry: opt_str(&value, "entry")?.unwrap_or_else(|| "f".to_string()),
                arity: opt_u64(&value, "arity")?.unwrap_or(1) as usize,
                harness,
                support,
                max_executions: opt_u64(&value, "max_executions")?.map(|n| n as usize),
                max_steps: opt_u64(&value, "max_steps")?,
                max_flips: opt_u64(&value, "max_flips")?.map(|n| n as usize),
                seed: opt_u64(&value, "seed")?,
                flip_workers: opt_u64(&value, "flip_workers")?.map(|n| n as usize),
                ack: value.get("ack").and_then(Value::as_bool).unwrap_or(false),
            })))
        }
        "status" => Ok(Request::Status),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// FNV-1a 64 digest of a report's verdict trail: one `(sat,
/// refinements, limit_hit)` record per query, in clause order. The
/// trail is deterministic per job (caches are verdict-preserving), so
/// the digest lets two runs be compared without shipping every record.
pub fn verdict_digest(report: &Report) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for q in &report.queries {
        eat(u8::from(q.sat));
        for b in (q.refinements as u64).to_le_bytes() {
            eat(b);
        }
        eat(u8::from(q.limit_hit));
    }
    hash
}

/// Renders one `result` line (without trailing newline). Deterministic
/// fields only — see the module docs.
pub fn result_line(completion: &Completion) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"type\":\"result\",\"job\":");
    out.push_str(&completion.id.to_string());
    out.push_str(",\"name\":");
    json::write_escaped(&mut out, &completion.name);
    match &completion.outcome {
        Err(message) => {
            out.push_str(",\"error\":");
            json::write_escaped(&mut out, message);
        }
        Ok(report) => {
            use std::fmt::Write as _;
            let sat = report.queries.iter().filter(|q| q.sat).count();
            let refinements: usize = report.queries.iter().map(|q| q.refinements).sum();
            let limit_hits = report.queries.iter().filter(|q| q.limit_hit).count();
            let _ = write!(
                out,
                ",\"stmts\":{},\"covered\":{},\"coverage\":{:.4},\"executions\":{},\
                 \"tests\":{},\"queries\":{},\"sat_queries\":{sat},\"refinements\":{refinements},\
                 \"limit_hits\":{limit_hits},\"verdicts\":\"{:016x}\"",
                report.stmt_count,
                report.coverage.len(),
                report.coverage_fraction(),
                report.executions,
                report.tests_generated,
                report.queries.len(),
                verdict_digest(report),
            );
            out.push_str(",\"bugs\":[");
            for (i, (stmt, inputs)) in report.bugs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{stmt},[");
                for (j, input) in inputs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    json::write_escaped(&mut out, input);
                }
                out.push_str("]]");
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Renders an `error` line for a malformed request.
pub fn error_line(message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"message\":{}}}",
        json::escaped(message)
    )
}

/// Renders a `status` line from a progress snapshot.
pub fn status_line(progress: &Progress, workers: usize) -> String {
    format!(
        "{{\"type\":\"status\",\"workers\":{workers},\"submitted\":{},\"drained\":{},\
         \"inflight\":{},\"resequencing\":{}}}",
        progress.submitted, progress.drained, progress.inflight, progress.resequencing
    )
}

/// Cache counters for a `stats` line.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCounters {
    /// Regex-model cache hits / misses.
    pub model: (u64, u64),
    /// Solver query-cache hits / misses.
    pub query: (u64, u64),
    /// CEGAR verdict-cache replays / misses.
    pub verdicts: (u64, u64),
    /// DFA-table hits / misses.
    pub dfa: (u64, u64),
    /// Approximate resident bytes of the model / query / verdict
    /// caches (the byte-budget accounting of long-lived sessions).
    pub bytes: (u64, u64, u64),
    /// Entries evicted so far from the model / query / verdict caches
    /// (capacity- or budget-driven).
    pub evictions: (u64, u64, u64),
}

/// Renders a `stats` line (scheduling-dependent observability data —
/// never part of the deterministic result stream).
pub fn stats_line(caches: &CacheCounters, shards: &[ShardStats]) -> String {
    let mut out = String::with_capacity(160);
    let _ = {
        use std::fmt::Write as _;
        write!(
            out,
            "{{\"type\":\"stats\",\"model_cache\":[{},{}],\"query_cache\":[{},{}],\
             \"verdict_cache\":[{},{}],\"dfa_tables\":[{},{}],\
             \"cache_bytes\":[{},{},{}],\"cache_evictions\":[{},{},{}],\"shards\":[",
            caches.model.0,
            caches.model.1,
            caches.query.0,
            caches.query.1,
            caches.verdicts.0,
            caches.verdicts.1,
            caches.dfa.0,
            caches.dfa.1,
            caches.bytes.0,
            caches.bytes.1,
            caches.bytes.2,
            caches.evictions.0,
            caches.evictions.1,
            caches.evictions.2,
        )
    };
    for (i, shard) in shards.iter().enumerate() {
        use std::fmt::Write as _;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"jobs\":{},\"local\":{},\"injector\":{},\"steals\":{}}}",
            shard.jobs_run, shard.local_pops, shard.injector_claims, shard.steals
        );
    }
    out.push_str("]}");
    out
}

/// Renders the immediate ack for `"ack": true` submissions.
pub fn accepted_line(id: u64, name: &str) -> String {
    format!(
        "{{\"type\":\"accepted\",\"job\":{id},\"name\":{}}}",
        json::escaped(name)
    )
}

/// Renders the final line of a session's stream.
pub fn done_line(jobs: u64) -> String {
    format!("{{\"type\":\"done\",\"jobs\":{jobs}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_submit() {
        let Request::Submit(submit) =
            parse_request(r#"{"type":"submit","program":"function f(x){return x;}"}"#)
                .expect("parses")
        else {
            panic!("submit");
        };
        assert_eq!(submit.entry, "f");
        assert_eq!(submit.arity, 1);
        assert_eq!(submit.support, None, "absent = session default");
        assert_eq!(submit.harness, HarnessKind::Strings);
        assert!(!submit.ack);
    }

    #[test]
    fn parses_full_submit() {
        let line = r#"{"type":"submit","name":"j","program":"function g(a,b){}","entry":"g",
            "arity":2,"harness":"string-array","support":"captures","max_executions":8,
            "max_steps":1000,"max_flips":4,"seed":7,"flip_workers":2,"ack":true}"#
            .replace('\n', " ");
        let Request::Submit(submit) = parse_request(&line).expect("parses") else {
            panic!("submit");
        };
        assert_eq!(submit.name.as_deref(), Some("j"));
        assert_eq!(submit.entry, "g");
        assert_eq!(submit.arity, 2);
        assert_eq!(submit.harness, HarnessKind::StringArray);
        assert_eq!(submit.support, Some(SupportLevel::Captures));
        assert_eq!(submit.max_executions, Some(8));
        assert_eq!(submit.max_steps, Some(1000));
        assert_eq!(submit.max_flips, Some(4));
        assert_eq!(submit.seed, Some(7));
        assert_eq!(submit.flip_workers, Some(2));
        assert!(submit.ack);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"type":"submit"}"#).is_err(), "no program");
        assert!(parse_request(r#"{"type":"warp"}"#).is_err());
        assert!(parse_request(r#"{"type":"submit","program":"x","support":"quantum"}"#).is_err());
        assert!(parse_request(r#"{"program":"x"}"#).is_err(), "no type");
    }

    #[test]
    fn result_line_shapes() {
        let error = Completion {
            id: 3,
            name: "bad \"job\"".into(),
            outcome: Err("parse: oops".into()),
        };
        let line = result_line(&error);
        assert_eq!(
            line,
            r#"{"type":"result","job":3,"name":"bad \"job\"","error":"parse: oops"}"#
        );
        // Every rendered line must itself parse as JSON.
        crate::json::parse(&line).expect("valid JSON");

        let ok = Completion {
            id: 0,
            name: "w".into(),
            outcome: Ok(Report {
                stmt_count: 4,
                executions: 2,
                tests_generated: 1,
                bugs: vec![(2, vec!["<t>".into()])],
                ..Report::default()
            }),
        };
        let line = result_line(&ok);
        crate::json::parse(&line).expect("valid JSON");
        assert!(line.contains("\"bugs\":[[2,[\"<t>\"]]]"), "{line}");
        assert!(line.contains("\"verdicts\":\"cbf29ce484222325\""), "{line}");
    }

    #[test]
    fn digest_tracks_verdicts() {
        let mut report = Report::default();
        let base = verdict_digest(&report);
        report.queries.push(expose_dse::QueryRecord {
            sat: true,
            ..Default::default()
        });
        let one = verdict_digest(&report);
        assert_ne!(base, one);
        report.queries[0].refinements = 3;
        assert_ne!(one, verdict_digest(&report));
    }
}

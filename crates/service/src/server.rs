//! The multi-connection front-end: an accept loop over any
//! [`Listener`] with admission control, shared warm caches, and
//! graceful drain.
//!
//! Every admitted connection runs an ordinary
//! [`ServeOptions::serve`](crate::ServeOptions::serve) session on its
//! own thread, over a clone of one shared
//! [`CacheSet`](expose_dse::CacheSet) — so tenants
//! warm each other's regex models, solver verdicts, and DFA tables
//! while each connection keeps its own deterministic result stream.
//!
//! Admission control is two-layered: the accept loop refuses
//! connections beyond `max_connections` with a structured `overloaded`
//! error line (and refuses everything with `draining` once a drain
//! began), while per-connection load shedding — when enabled — turns
//! the scheduler's in-flight backpressure into `overloaded` errors on
//! individual submits. A drain ([`ServerState::begin_drain`], wired to
//! SIGTERM by `expose-serve`) stops accepting, lets every in-flight
//! session flush and close with its versioned `done` line, then
//! returns.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::{self, AdmissionCounters, ErrorCode, ProtoVersion, RequestError};
use crate::session::ServeOptions;
use crate::transport::{Accepted, Connection, Listener};

/// How often the accept loop wakes to re-check the drain flag when no
/// connection arrives.
const ACCEPT_POLL: Duration = Duration::from_millis(100);

/// Shared front-end state: the drain flag plus admission counters.
/// One instance is shared by the accept loop, every connection's
/// session (which polls [`ServerState::draining`] between reads), and
/// the signal watcher of the binary.
#[derive(Debug, Default)]
pub struct ServerState {
    draining: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_draining: AtomicU64,
}

impl ServerState {
    /// Fresh state behind an [`Arc`], ready to share.
    pub fn new() -> Arc<ServerState> {
        Arc::new(ServerState::default())
    }

    /// Starts a graceful drain: stop admitting connections, finish
    /// in-flight work, exit the accept loop once idle. Idempotent.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Connections currently being served.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// A snapshot of the admission counters for `metrics` lines.
    pub fn admission_counters(&self) -> AdmissionCounters {
        AdmissionCounters {
            active: self.active() as u64,
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            draining: self.draining(),
        }
    }
}

/// What one [`serve_listener`] run did.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerSummary {
    /// Connections admitted and served to completion.
    pub connections: u64,
    /// Connections refused by admission control (`overloaded` or
    /// `draining`).
    pub rejected: u64,
}

/// Writes a one-line structured refusal to a just-accepted connection
/// and closes it. Best-effort: the peer may already be gone.
fn refuse(conn: Box<dyn Connection>, code: ErrorCode, message: &str) {
    if let Ok((_input, mut output)) = conn.open() {
        let line = proto::error_line(&RequestError::new(code, message, ProtoVersion::V1));
        let _ = writeln!(output, "{line}");
        let _ = output.flush();
    }
}

/// Serves connections from `listener` until the listener is exhausted
/// (stdio) or `state` drains. Each admitted connection runs
/// [`ServeOptions::serve`] on its own thread over a clone of one
/// shared warm cache set.
pub fn serve_listener(
    listener: &mut (dyn Listener + Send),
    options: &ServeOptions,
    state: &Arc<ServerState>,
) -> io::Result<ServerSummary> {
    let config = options.config_ref().clone();
    // One warm cache set shared across every connection (unless the
    // caller already provided one).
    let caches = options
        .caches_ref()
        .cloned()
        .unwrap_or_else(|| config.cache_set());
    let mut summary = ServerSummary::default();
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if state.draining() && state.active() == 0 {
                return Ok(());
            }
            match listener.poll_accept(ACCEPT_POLL)? {
                Accepted::Idle => continue,
                Accepted::Exhausted => {
                    // No further connections possible; wait out the
                    // in-flight sessions and finish.
                    while state.active() > 0 {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    return Ok(());
                }
                Accepted::Connection(conn) => {
                    if state.draining() {
                        state.rejected_draining.fetch_add(1, Ordering::Relaxed);
                        summary.rejected += 1;
                        refuse(
                            conn,
                            ErrorCode::Draining,
                            "server is draining; connection refused",
                        );
                        continue;
                    }
                    if config.max_connections > 0 && state.active() >= config.max_connections {
                        state.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                        summary.rejected += 1;
                        refuse(
                            conn,
                            ErrorCode::Overloaded,
                            &format!(
                                "{} connections active (the limit); retry later",
                                config.max_connections
                            ),
                        );
                        continue;
                    }
                    state.accepted.fetch_add(1, Ordering::Relaxed);
                    state.active.fetch_add(1, Ordering::SeqCst);
                    summary.connections += 1;
                    let serve = options
                        .clone()
                        .caches(caches.clone())
                        .server(Arc::clone(state));
                    let state = Arc::clone(state);
                    scope.spawn(move || {
                        let peer = conn.peer();
                        let result = match conn.open() {
                            Ok((input, output)) => serve.serve(input, output),
                            Err(e) => Err(e),
                        };
                        if let Err(e) = result {
                            // A dropped peer is routine for a network
                            // service; it must never take the server
                            // down.
                            eprintln!("expose-serve: session on {peer} ended with error: {e}");
                        }
                        state.active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            }
        }
    })?;
    Ok(summary)
}

//! A minimal JSON reader/writer — just enough for the NDJSON protocol,
//! so the service stays free of external dependencies.
//!
//! The parser accepts standard JSON (RFC 8259): all escape sequences
//! including `\uXXXX` surrogate pairs, nested arrays/objects, and
//! numbers in the `f64` range. Object member order is preserved
//! (requests are small; a vector beats a map for them anyway).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one (rejects negatives,
    /// fractions, and values beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        text: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing input"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let c = 0x10000
                                        + ((u32::from(unit) - 0xD800) << 10)
                                        + (u32::from(low) - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.error("bad code point"))?
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                char::from_u32(u32::from(unit))
                                    .ok_or_else(|| self.error("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last digit;
                            // the shared advance below would skip a
                            // character, so loop directly.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The cursor only ever lands
                    // on scalar boundaries, but a malformed position
                    // must surface as a parse error, never a panic —
                    // this is the service's network-facing reader.
                    let rest = self
                        .text
                        .get(self.pos..)
                        .ok_or_else(|| self.error("malformed utf-8 position in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("non-ascii \\u escape"))?;
        let unit = u16::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Only ASCII digits/signs were consumed, but slice through the
        // original &str so a bad cursor yields an error, not a panic.
        let text = self
            .text
            .get(start..self.pos)
            .ok_or_else(|| self.error("malformed bytes in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Appends a JSON string literal (with quotes) for `s` to `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The JSON string literal for `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    write_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let value = parse(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(value.get("c").and_then(Value::as_str), Some("x"));
        let Value::Arr(items) = value.get("a").unwrap() else {
            panic!("array");
        };
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].get("b").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn escape_roundtrip() {
        let original = "regex: /^<(\\w+)>\"\\1\"$/\nline2\ttab \u{1}\u{1F600}";
        let encoded = escaped(original);
        let Value::Str(back) = parse(&encoded).unwrap() else {
            panic!("string");
        };
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let Value::Str(s) = parse(r#""\ud83d\ude00""#).unwrap() else {
            panic!("string");
        };
        assert_eq!(s, "\u{1F600}");
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("1 2").is_err(), "trailing input");
        assert!(parse("\"\u{1}\"").is_err(), "raw control character");
    }

    #[test]
    fn u64_extraction_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_bytes_error_instead_of_panicking() {
        // Non-ASCII where a number is expected: the sign is consumed,
        // no digits follow, and the slice must fail `f64` parsing —
        // never an internal expect.
        assert!(parse("-é").is_err());
        assert!(parse("-\u{FF11}2").is_err(), "fullwidth digit");
        // Truncated escapes at every cut point.
        for input in [
            "\"\\",
            "\"\\u",
            "\"\\u1",
            "\"\\u12",
            "\"\\u123",
            "\"\\ud83d",
            "\"\\ud83d\\",
            "\"\\ud83d\\u",
            "\"\\ud83d\\ude0",
        ] {
            assert!(parse(input).is_err(), "{input:?} must error");
        }
        // Non-ASCII bytes inside a truncated escape.
        assert!(parse("\"\\uéé00\"").is_err());
    }

    #[test]
    fn truncated_documents_never_panic() {
        // Every char-boundary prefix of a representative protocol line
        // must either parse or error — a malformed frame from a client
        // must not take the service down.
        let doc = r#"{"cmd":"solve","q":"a\u0041\ud83d\ude00é🎉","n":-1.5e2,"ok":true}"#;
        for cut in 0..=doc.len() {
            if let Some(prefix) = doc.get(..cut) {
                let _ = parse(prefix);
            }
        }
        assert_eq!(
            parse(doc).unwrap().get("n").and_then(Value::as_f64),
            Some(-150.0)
        );
    }
}

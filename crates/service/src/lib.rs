//! The ExpoSE job service: a long-running NDJSON front-end over the
//! work-stealing DSE scheduler.
//!
//! The paper's evaluation shape — thousands of independent DSE jobs —
//! is exactly what a service should amortize: [`ServeOptions::serve`]
//! runs one session (submit jobs, query status/stats/metrics, stream
//! re-sequenced results), all sessions of a process share one warm
//! [`expose_dse::CacheSet`], and the `expose-serve` binary exposes the
//! whole thing over stdio, a Unix socket, or TCP behind one `--listen`
//! surface ([`transport`]), with admission control and graceful drain
//! ([`server`]) and a concurrent soak client ([`soak`]).
//!
//! Protocol v2 adds *streaming solve sessions* on top: a client
//! replays a trace clause by clause (`open_session`/`push`) and poses
//! flip queries (`solve`) against the server-side assumption stack as
//! it grows, with verdicts byte-identical to the in-process
//! incremental sessions of `expose_dse::TraceFlipSession`.
//!
//! See [`proto`] for the wire protocol and its determinism contract:
//! the `result` stream of a session is byte-identical for any worker
//! count.

#![warn(missing_docs)]

pub mod json;
pub mod proto;
pub mod server;
pub mod session;
pub mod soak;
pub mod stream;
pub mod transport;
pub mod wire;

pub use proto::{
    parse_request, result_line, verdict_digest, ErrorCode, ExploreRequest, LifetimeCounters,
    ProtoVersion, Request, RequestError, SubmitRequest, VerdictDigest,
};
pub use server::{serve_listener, ServerState, ServerSummary};
pub use session::{ServeOptions, ServiceConfig, ServiceSummary};
pub use soak::{run_soak, SoakOptions, SoakReport};
pub use transport::{Listen, Listener};

use crate::json::escaped;

/// Execution budget for [`corpus_submit_lines`] (mirrors the bench
/// harness presets: quick for PR CI, full for the nightly run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusBudget {
    /// 40 executions, 50k interpreter steps — the PR-CI budget.
    Quick,
    /// 48 executions, 100k interpreter steps — the table/nightly
    /// budget.
    Full,
}

impl CorpusBudget {
    /// `(max_executions, max_steps)` of the preset.
    pub fn limits(self) -> (usize, u64) {
        match self {
            CorpusBudget::Quick => (40, 50_000),
            CorpusBudget::Full => (48, 100_000),
        }
    }
}

/// The standard benchmark corpus (the eleven Table 6 library workloads
/// plus `generated` Table 7 programs) as NDJSON `submit` lines — the
/// input of the `service-smoke` CI job and the throughput bench.
pub fn corpus_submit_lines(generated: usize, budget: CorpusBudget) -> Vec<String> {
    let (max_executions, max_steps) = budget.limits();
    let submit = |name: &str, source: &str, entry: &str, arity: usize| {
        format!(
            "{{\"type\":\"submit\",\"name\":{},\"entry\":{},\"arity\":{arity},\
             \"max_executions\":{max_executions},\"max_steps\":{max_steps},\
             \"program\":{}}}",
            escaped(name),
            escaped(entry),
            escaped(source),
        )
    };
    let mut lines = Vec::new();
    for w in corpus::library_workloads() {
        lines.push(submit(w.name, w.source, w.entry, w.arity));
    }
    for p in corpus::generate_dse_programs(generated, 0xbe7c) {
        lines.push(submit(&p.name, &p.source, &p.entry, p.arity));
    }
    lines
}

/// The same corpus as protocol-v2 `explore` lines, each running an
/// `iterations`-bounded pure-concolic loop — the input of the
/// `explore-smoke` CI job, whose response stream must be byte-identical
/// at any flip worker count.
pub fn corpus_explore_lines(
    generated: usize,
    budget: CorpusBudget,
    iterations: usize,
) -> Vec<String> {
    let (_, max_steps) = budget.limits();
    let explore = |name: &str, source: &str, entry: &str, arity: usize| {
        format!(
            "{{\"v\":2,\"type\":\"explore\",\"name\":{},\"entry\":{},\"arity\":{arity},\
             \"iterations\":{iterations},\"max_steps\":{max_steps},\
             \"program\":{}}}",
            escaped(name),
            escaped(entry),
            escaped(source),
        )
    };
    let mut lines = Vec::new();
    for w in corpus::library_workloads() {
        lines.push(explore(w.name, w.source, w.entry, w.arity));
    }
    for p in corpus::generate_dse_programs(generated, 0xbe7c) {
        lines.push(explore(&p.name, &p.source, &p.entry, p.arity));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_lines_parse_as_submits() {
        let lines = corpus_submit_lines(3, CorpusBudget::Quick);
        assert_eq!(lines.len(), 11 + 3);
        for line in &lines {
            let (request, _) = parse_request(line).expect("parses");
            let Request::Submit(submit) = request else {
                panic!("submit line");
            };
            assert_eq!(submit.max_executions, Some(40));
            assert_eq!(submit.max_steps, Some(50_000));
            // Programs must survive the JSON round trip intact.
            expose_dse::parser::parse_program(&submit.program).expect("program parses");
        }
    }

    #[test]
    fn budgets_differ() {
        assert_eq!(CorpusBudget::Quick.limits(), (40, 50_000));
        assert_eq!(CorpusBudget::Full.limits(), (48, 100_000));
    }
}

//! One service session: a reader loop feeding the scheduler and an
//! emitter thread streaming re-sequenced results.
//!
//! The reader (the calling thread) parses NDJSON requests and submits
//! jobs; [`expose_dse::sched::Scheduler::submit`] blocks when
//! `max_inflight` jobs are pending, so backpressure propagates to the
//! input — the session stops *reading* instead of buffering without
//! bound. The emitter thread drains completions in job-id order and
//! writes one `result` line per job as it lands; because the scheduler
//! re-sequences, the result stream is byte-identical for any worker
//! count.

use std::io::{BufRead, Write};
use std::sync::Mutex;

use expose_dse::sched::{Scheduler, SchedulerConfig};
use expose_dse::{parser::parse_program, CacheSet, EngineConfig, Harness, Job};

use crate::proto::{self, CacheCounters, HarnessKind, Request, SubmitRequest};

/// Session configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (`0` = auto).
    pub workers: usize,
    /// In-flight bound for backpressure (`0` = unbounded).
    pub max_inflight: usize,
    /// Regex-model cache capacity of a fresh session cache set.
    pub model_cache_capacity: usize,
    /// Solver query-cache capacity of a fresh session cache set.
    pub query_cache_capacity: usize,
    /// DFA intern-table capacity of a fresh session cache set.
    pub dfa_table_capacity: usize,
    /// Approximate byte budget for resident regex models (`0` =
    /// unlimited). Entry counts alone do not bound memory — a few
    /// hundred quantifier-expanded models can dwarf thousands of small
    /// ones — so long-lived sessions get a byte ceiling too.
    pub model_cache_byte_budget: usize,
    /// Approximate byte budget for cached solver/CEGAR verdicts (`0` =
    /// unlimited).
    pub query_cache_byte_budget: usize,
    /// Per-job engine defaults; `submit` fields override per job.
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let engine = EngineConfig::default();
        ServiceConfig {
            workers: 0,
            max_inflight: 256,
            model_cache_capacity: engine.model_cache_capacity,
            query_cache_capacity: engine.query_cache_capacity,
            dfa_table_capacity: engine.solver.dfa_cache_capacity,
            // 64 MiB each: far above any workload in the bench suite,
            // but a hard ceiling for sessions that run for days.
            model_cache_byte_budget: 64 << 20,
            query_cache_byte_budget: 64 << 20,
            engine,
        }
    }
}

impl ServiceConfig {
    /// A fresh session cache set sized from this configuration.
    pub fn cache_set(&self) -> CacheSet {
        CacheSet::session_with_byte_budgets(
            self.model_cache_capacity,
            self.query_cache_capacity,
            self.dfa_table_capacity,
            self.model_cache_byte_budget,
            self.query_cache_byte_budget,
        )
    }
}

/// What a finished session did.
#[derive(Debug, Clone, Default)]
pub struct ServiceSummary {
    /// Jobs completed (including rejected submissions).
    pub jobs: u64,
    /// Requests that failed to parse.
    pub request_errors: u64,
}

/// Builds the engine configuration of one submission.
fn engine_for(submit: &SubmitRequest, defaults: &EngineConfig) -> EngineConfig {
    let mut config = defaults.clone();
    if let Some(support) = submit.support {
        config.support = support;
    }
    if let Some(n) = submit.max_executions {
        config.max_executions = n;
    }
    if let Some(n) = submit.max_steps {
        config.max_steps = n;
    }
    if let Some(n) = submit.max_flips {
        config.max_flips_per_trace = n;
    }
    if let Some(n) = submit.seed {
        config.seed = n;
    }
    if let Some(n) = submit.flip_workers {
        config.flip_workers = n;
    }
    config
}

/// Converts a submission into a runnable job (the program must parse).
pub fn job_from_submit(
    submit: &SubmitRequest,
    name: &str,
    defaults: &EngineConfig,
) -> Result<Job, String> {
    let program = parse_program(&submit.program).map_err(|e| format!("parse: {e}"))?;
    let harness = match submit.harness {
        HarnessKind::Strings => Harness::strings(&submit.entry, submit.arity),
        HarnessKind::StringArray => Harness::string_array(&submit.entry, submit.arity),
    };
    Ok(Job {
        name: name.to_string(),
        program,
        harness,
        config: engine_for(submit, defaults),
    })
}

/// Serves one NDJSON session over `input`/`output` with a fresh
/// session cache set. Returns when the input ends or a `shutdown`
/// request arrives, after the result stream has fully drained.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    config: &ServiceConfig,
) -> std::io::Result<ServiceSummary> {
    serve_with_caches(input, output, config, config.cache_set())
}

/// [`serve`] with a caller-provided cache set, so several sessions
/// (e.g. successive socket connections) keep their caches warm.
pub fn serve_with_caches<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    config: &ServiceConfig,
    caches: CacheSet,
) -> std::io::Result<ServiceSummary> {
    let dfa_tables = caches.dfa.clone();
    let scheduler = Scheduler::start(
        SchedulerConfig {
            workers: config.workers,
            max_inflight: config.max_inflight,
        },
        caches,
    );
    let output = Mutex::new(output);
    // One line per call, atomically, so emitter and reader output
    // never interleave mid-line.
    let write_line = |line: &str| -> std::io::Result<()> {
        let mut out = output.lock().expect("output poisoned");
        writeln!(out, "{line}")?;
        out.flush()
    };

    let mut summary = ServiceSummary::default();
    let mut io_error: Option<std::io::Error> = None;

    let reader_result = std::thread::scope(|scope| -> std::io::Result<()> {
        let emitter = scope.spawn(|| {
            let mut jobs: u64 = 0;
            let mut first_error: Option<std::io::Error> = None;
            while let Some(completion) = scheduler.next_ordered() {
                jobs += 1;
                if first_error.is_some() {
                    // The sink is gone; keep draining so submitters
                    // blocked on backpressure are not wedged.
                    continue;
                }
                if let Err(e) = write_line(&proto::result_line(&completion)) {
                    first_error = Some(e);
                }
            }
            (jobs, first_error)
        });

        // The reader loop runs inside a closure so an I/O error (a
        // dropped socket, a broken pipe on a status/ack write) cannot
        // `?` past the `close()` below — the emitter only exits once
        // the session is closed, and the scope joins it either way.
        let reader = (|| -> std::io::Result<()> {
            for line in input.lines() {
                let line = line?;
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match proto::parse_request(line) {
                    Err(message) => {
                        summary.request_errors += 1;
                        write_line(&proto::error_line(&message))?;
                    }
                    Ok(Request::Submit(submit)) => {
                        // The reader is the only submitter, so the next
                        // id is stable between this read and the
                        // submit call.
                        let next_id = scheduler.progress().submitted;
                        let name = submit
                            .name
                            .clone()
                            .unwrap_or_else(|| format!("job{next_id}"));
                        let id = match job_from_submit(&submit, &name, &config.engine) {
                            Ok(job) => scheduler.submit(job),
                            Err(error) => scheduler.submit_rejected(&name, error),
                        };
                        if submit.ack {
                            write_line(&proto::accepted_line(id, &name))?;
                        }
                    }
                    Ok(Request::Status) => {
                        write_line(&proto::status_line(
                            &scheduler.progress(),
                            scheduler.workers(),
                        ))?;
                    }
                    Ok(Request::Stats) => {
                        let caches = scheduler.caches();
                        let counters = CacheCounters {
                            model: (caches.model.stats().hits, caches.model.stats().misses),
                            query: (caches.query.hits(), caches.query.misses()),
                            verdicts: (caches.verdicts.hits(), caches.verdicts.misses()),
                            dfa: dfa_tables
                                .as_ref()
                                .map(|t| (t.hits(), t.misses()))
                                .unwrap_or_default(),
                            bytes: (
                                caches.model.bytes() as u64,
                                caches.query.bytes() as u64,
                                caches.verdicts.bytes() as u64,
                            ),
                            evictions: (
                                caches.model.evictions(),
                                caches.query.evictions(),
                                caches.verdicts.evictions(),
                            ),
                        };
                        write_line(&proto::stats_line(&counters, &scheduler.shard_stats()))?;
                    }
                    Ok(Request::Shutdown) => break,
                }
            }
            Ok(())
        })();

        scheduler.close();
        let (jobs, emit_error) = emitter.join().expect("emitter panicked");
        summary.jobs = jobs;
        io_error = emit_error;
        reader
    });

    reader_result?;
    if let Some(error) = io_error {
        return Err(error);
    }
    write_line(&proto::done_line(summary.jobs))?;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_lines(lines: &str, config: &ServiceConfig) -> (Vec<String>, ServiceSummary) {
        let mut out: Vec<u8> = Vec::new();
        let summary = serve(lines.as_bytes(), &mut out, config).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        (text.lines().map(str::to_string).collect(), summary)
    }

    fn quick_config(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            engine: EngineConfig {
                max_executions: 6,
                ..EngineConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submits_stream_results_in_order() {
        let input = concat!(
            r#"{"type":"submit","name":"a","program":"function f(x) { if (x === \"k\") { return 1; } return 0; }"}"#,
            "\n",
            r#"{"type":"submit","name":"b","program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"type":"shutdown"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(2));
        assert_eq!(summary.jobs, 2);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with(r#"{"type":"result","job":0,"name":"a""#));
        assert!(lines[1].starts_with(r#"{"type":"result","job":1,"name":"b""#));
        assert_eq!(lines[2], r#"{"type":"done","jobs":2}"#);
    }

    #[test]
    fn parse_failures_hold_their_slot() {
        let input = concat!(
            r#"{"type":"submit","name":"bad","program":"function f(x) { if ("}"#,
            "\n",
            r#"{"type":"submit","name":"good","program":"function f(x) { return 0; }"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(2));
        assert_eq!(summary.jobs, 2);
        assert!(
            lines[0].contains(r#""job":0,"name":"bad","error":"parse:"#),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains(r#""job":1,"name":"good""#));
    }

    #[test]
    fn malformed_requests_get_error_lines() {
        let input = "this is not json\n{\"type\":\"status\"}\n";
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 1);
        assert!(lines[0].starts_with(r#"{"type":"error""#));
        assert!(lines[1].starts_with(r#"{"type":"status""#), "{}", lines[1]);
        assert_eq!(lines[2], r#"{"type":"done","jobs":0}"#);
    }

    #[test]
    fn reader_io_error_ends_the_session_instead_of_hanging() {
        // A sink that dies immediately: the first write (the error
        // line for the malformed request) fails. serve() must close
        // the scheduler and return the error — before the fix the
        // reader error skipped `close()` and the scope deadlocked
        // joining the emitter.
        struct DeadSink;
        impl std::io::Write for DeadSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let input = "not json\n{\"type\":\"submit\",\"program\":\"function f(x) { return 0; }\"}\n";
        let result = serve(input.as_bytes(), DeadSink, &quick_config(2));
        let error = result.expect_err("dead sink must surface as an error");
        assert_eq!(error.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn session_support_default_applies_when_submit_omits_it() {
        use expose_core::SupportLevel;
        let defaults = EngineConfig {
            support: SupportLevel::Concrete,
            ..EngineConfig::default()
        };
        let line = r#"{"type":"submit","program":"function f(x) { return 0; }"}"#;
        let crate::proto::Request::Submit(submit) =
            crate::proto::parse_request(line).expect("parses")
        else {
            panic!("submit");
        };
        let job = job_from_submit(&submit, "j", &defaults).expect("parses");
        assert_eq!(job.config.support, SupportLevel::Concrete);

        let line =
            r#"{"type":"submit","program":"function f(x) { return 0; }","support":"modeling"}"#;
        let crate::proto::Request::Submit(submit) =
            crate::proto::parse_request(line).expect("parses")
        else {
            panic!("submit");
        };
        let job = job_from_submit(&submit, "j", &defaults).expect("parses");
        assert_eq!(job.config.support, SupportLevel::Modeling);
    }

    #[test]
    fn cache_set_carries_byte_budgets() {
        let config = ServiceConfig {
            model_cache_byte_budget: 1024,
            query_cache_byte_budget: 2048,
            ..ServiceConfig::default()
        };
        let caches = config.cache_set();
        assert_eq!(caches.model.byte_budget(), 1024);
        assert_eq!(caches.query.byte_budget(), 2048);
        // The defaults are bounded, not unlimited.
        let defaults = ServiceConfig::default().cache_set();
        assert!(defaults.model.byte_budget() > 0);
        assert!(defaults.query.byte_budget() > 0);
    }

    #[test]
    fn stats_and_ack_lines_render() {
        let input = concat!(
            r#"{"type":"submit","name":"a","ack":true,"program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"type":"stats"}"#,
            "\n",
        );
        let (lines, _) = run_lines(input, &quick_config(1));
        assert_eq!(lines[0], r#"{"type":"accepted","job":0,"name":"a"}"#);
        assert!(
            lines.iter().any(|l| l.starts_with(r#"{"type":"stats""#)),
            "{lines:?}"
        );
    }
}

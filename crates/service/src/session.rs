//! One service session: a reader loop feeding the scheduler and an
//! emitter thread streaming re-sequenced results.
//!
//! The reader (the calling thread) parses NDJSON requests and submits
//! jobs; [`expose_dse::sched::Scheduler::submit`] blocks when
//! `max_inflight` jobs are pending, so backpressure propagates to the
//! input — the session stops *reading* instead of buffering without
//! bound. The emitter thread drains completions in job-id order and
//! writes one `result` line per job as it lands; because the scheduler
//! re-sequences, the result stream is byte-identical for any worker
//! count.
//!
//! Protocol-v2 streaming sessions (`open_session`/`push`/`pop`/
//! `solve`/`close_session`) are handled on the reader thread: each
//! connection holds at most one live [`TraceFlipSession`] whose
//! assumption stack grows clause by clause, sharing the connection's
//! warm [`CacheSet`] (model/query/DFA/CEGAR layers) with batch jobs, so
//! a flip solved for a submitted program warms the streamed session and
//! vice versa. `solved` responses are synchronous and ordered with the
//! requests, which keeps them deterministic for any worker count.

use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use expose_dse::sched::{LatencyHistogram, Scheduler, SchedulerConfig};
use expose_dse::sym::RegexEvent;
use expose_dse::{
    explore_observed, parser::parse_program, CacheSet, EngineConfig, ExploreConfig, Harness, Job,
    TraceFlipSession,
};
use strsolve::Solver;

use crate::proto::{
    self, CacheCounters, ErrorCode, ExploreRequest, HarnessKind, LifetimeCounters, ProtoVersion,
    PushRequest, Request, RequestError, SessionCounters, SubmitRequest,
};
use crate::server::ServerState;
use crate::transport::{next_line, LineBuffer, LineEvent};
use crate::wire;

/// Session configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (`0` = auto).
    pub workers: usize,
    /// In-flight bound for backpressure (`0` = unbounded).
    pub max_inflight: usize,
    /// Regex-model cache capacity of a fresh session cache set.
    pub model_cache_capacity: usize,
    /// Solver query-cache capacity of a fresh session cache set.
    pub query_cache_capacity: usize,
    /// DFA intern-table capacity of a fresh session cache set.
    pub dfa_table_capacity: usize,
    /// Approximate byte budget for resident regex models (`0` =
    /// unlimited). Entry counts alone do not bound memory — a few
    /// hundred quantifier-expanded models can dwarf thousands of small
    /// ones — so long-lived sessions get a byte ceiling too.
    pub model_cache_byte_budget: usize,
    /// Approximate byte budget for cached solver/CEGAR verdicts (`0` =
    /// unlimited).
    pub query_cache_byte_budget: usize,
    /// Maximum assumption-stack depth of a protocol-v2 streaming
    /// session; a `push` beyond it is rejected with `depth_limit`.
    /// Every retained frame (and its retraction snapshot) stays
    /// resident, so unbounded depth would let one connection grow
    /// server memory without limit. An `open_session` request may
    /// lower (never raise) this per session via `max_depth`.
    pub max_session_depth: usize,
    /// Maximum byte length of one request line (`0` = unlimited); an
    /// oversized line is discarded and answered with `bad_request`
    /// instead of buffering without bound.
    pub max_line_bytes: usize,
    /// Concurrent-connection cap of the socket front-end (`0` =
    /// unlimited); connections beyond it are refused with
    /// `overloaded`.
    pub max_connections: usize,
    /// Turn scheduler backpressure into load shedding: when the
    /// in-flight bound is reached, answer a `submit` with an
    /// `overloaded` error instead of stalling the reader. Off by
    /// default — shedding is timing-dependent, so the deterministic
    /// stream contract only holds without it.
    pub load_shed: bool,
    /// Per-job engine defaults; `submit` fields override per job.
    pub engine: EngineConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let engine = EngineConfig::default();
        ServiceConfig {
            workers: 0,
            max_inflight: 256,
            model_cache_capacity: engine.model_cache_capacity,
            query_cache_capacity: engine.query_cache_capacity,
            dfa_table_capacity: engine.solver.dfa_cache_capacity,
            // 64 MiB each: far above any workload in the bench suite,
            // but a hard ceiling for sessions that run for days.
            model_cache_byte_budget: 64 << 20,
            query_cache_byte_budget: 64 << 20,
            // A trace this deep is far beyond any engine workload; the
            // bound exists to cap per-connection memory, not to be hit.
            max_session_depth: 4096,
            // 4 MiB comfortably fits every corpus program while keeping
            // one malicious line from ballooning memory.
            max_line_bytes: 4 << 20,
            max_connections: 64,
            load_shed: false,
            engine,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker shard count (`0` = auto).
    pub fn workers(mut self, workers: usize) -> ServiceConfig {
        self.workers = workers;
        self
    }

    /// Sets the in-flight backpressure bound (`0` = unbounded).
    pub fn max_inflight(mut self, max_inflight: usize) -> ServiceConfig {
        self.max_inflight = max_inflight;
        self
    }

    /// Sets both session cache byte budgets (model and query/verdict)
    /// to `bytes` — the single `--cache-bytes` knob.
    pub fn cache_bytes(mut self, bytes: usize) -> ServiceConfig {
        self.model_cache_byte_budget = bytes;
        self.query_cache_byte_budget = bytes;
        self
    }

    /// Sets the per-trace flip solver worker count (`0` = auto).
    pub fn flip_workers(mut self, flip_workers: usize) -> ServiceConfig {
        self.engine.flip_workers = flip_workers;
        self
    }

    /// Sets the concurrent-connection cap (`0` = unlimited).
    pub fn max_connections(mut self, max_connections: usize) -> ServiceConfig {
        self.max_connections = max_connections;
        self
    }

    /// Sets the per-line byte cap (`0` = unlimited).
    pub fn max_line_bytes(mut self, max_line_bytes: usize) -> ServiceConfig {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Enables or disables load shedding at the in-flight bound.
    pub fn load_shed(mut self, load_shed: bool) -> ServiceConfig {
        self.load_shed = load_shed;
        self
    }

    /// A fresh session cache set sized from this configuration.
    pub fn cache_set(&self) -> CacheSet {
        CacheSet::session_with_byte_budgets(
            self.model_cache_capacity,
            self.query_cache_capacity,
            self.dfa_table_capacity,
            self.model_cache_byte_budget,
            self.query_cache_byte_budget,
        )
    }

    /// The effective configuration as a compact JSON object — the
    /// `config` echo of `stats` and `metrics` lines, so a tenant can
    /// confirm what the service actually runs with.
    pub fn echo_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"max_inflight\":{},\"max_connections\":{},\
             \"max_line_bytes\":{},\"load_shed\":{},\"max_session_depth\":{},\
             \"model_cache_capacity\":{},\"query_cache_capacity\":{},\
             \"dfa_table_capacity\":{},\"model_cache_byte_budget\":{},\
             \"query_cache_byte_budget\":{},\"max_executions\":{},\
             \"max_steps\":{},\"max_flips\":{},\"flip_workers\":{},\"seed\":{}}}",
            self.workers,
            self.max_inflight,
            self.max_connections,
            self.max_line_bytes,
            self.load_shed,
            self.max_session_depth,
            self.model_cache_capacity,
            self.query_cache_capacity,
            self.dfa_table_capacity,
            self.model_cache_byte_budget,
            self.query_cache_byte_budget,
            self.engine.max_executions,
            self.engine.max_steps,
            self.engine.max_flips_per_trace,
            self.engine.flip_workers,
            self.engine.seed,
        )
    }
}

/// What a finished session did.
#[derive(Debug, Clone, Default)]
pub struct ServiceSummary {
    /// Jobs completed (including rejected submissions).
    pub jobs: u64,
    /// Requests answered with an `error` line (parse failures and
    /// session-verb misuse).
    pub request_errors: u64,
}

/// Builds the engine configuration of one submission.
fn engine_for(submit: &SubmitRequest, defaults: &EngineConfig) -> EngineConfig {
    let mut config = defaults.clone();
    if let Some(support) = submit.support {
        config.support = support;
    }
    if let Some(n) = submit.max_executions {
        config.max_executions = n;
    }
    if let Some(n) = submit.max_steps {
        config.max_steps = n;
    }
    if let Some(n) = submit.max_flips {
        config.max_flips_per_trace = n;
    }
    if let Some(n) = submit.seed {
        config.seed = n;
    }
    if let Some(n) = submit.flip_workers {
        config.flip_workers = n;
    }
    config
}

/// Converts a submission into a runnable job (the program must parse).
pub fn job_from_submit(
    submit: &SubmitRequest,
    name: &str,
    defaults: &EngineConfig,
) -> Result<Job, String> {
    let program = parse_program(&submit.program).map_err(|e| format!("parse: {e}"))?;
    let harness = match submit.harness {
        HarnessKind::Strings => Harness::strings(&submit.entry, submit.arity),
        HarnessKind::StringArray => Harness::string_array(&submit.entry, submit.arity),
    };
    Ok(Job {
        name: name.to_string(),
        program,
        harness,
        config: engine_for(submit, defaults),
    })
}

/// Builds the exploration configuration of one `explore` request from
/// the service's engine defaults plus the request's overrides.
pub fn explore_config_for(request: &ExploreRequest, defaults: &EngineConfig) -> ExploreConfig {
    let mut engine = defaults.clone();
    if let Some(support) = request.support {
        engine.support = support;
    }
    if let Some(n) = request.max_steps {
        engine.max_steps = n;
    }
    if let Some(n) = request.max_flips {
        engine.max_flips_per_trace = n;
    }
    if let Some(n) = request.flip_workers {
        engine.flip_workers = n;
    }
    let mut config = ExploreConfig {
        engine,
        ..ExploreConfig::default()
    };
    if let Some(n) = request.iterations {
        config.max_iterations = n;
    }
    if let Some(n) = request.max_corpus {
        config.max_corpus = n;
    }
    config
}

/// One connection's open streaming session: the wire-facing event
/// table plus the incremental flip session it feeds. The event table is
/// append-only — `pop` retracts the clause but keeps the events it
/// introduced, so client-side event indices never shift.
struct StreamState<'a> {
    id: u64,
    /// Effective depth cap: the service's `max_session_depth`, lowered
    /// by the session's `max_depth` override if one was given.
    max_depth: usize,
    events: Vec<RegexEvent>,
    flips: TraceFlipSession<'a>,
}

/// Options for serving one NDJSON session — the single serve entry
/// point (the old `serve`/`serve_with_caches` free functions are
/// gone).
///
/// ```no_run
/// # use expose_service::{ServeOptions, ServiceConfig};
/// let stdin = std::io::stdin();
/// let summary = ServeOptions::new()
///     .config(ServiceConfig::default())
///     .serve(stdin.lock(), std::io::stdout())?;
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    config: ServiceConfig,
    caches: Option<CacheSet>,
    server: Option<Arc<ServerState>>,
    metrics_text: bool,
}

impl ServeOptions {
    /// Default options: [`ServiceConfig::default`], fresh caches.
    pub fn new() -> ServeOptions {
        ServeOptions::default()
    }

    /// Sets the session configuration.
    pub fn config(mut self, config: ServiceConfig) -> ServeOptions {
        self.config = config;
        self
    }

    /// Uses a caller-provided cache set instead of a fresh one, so
    /// several sessions (e.g. successive socket connections) keep
    /// their caches warm.
    pub fn caches(mut self, caches: CacheSet) -> ServeOptions {
        self.caches = Some(caches);
        self
    }

    /// Attaches the shared front-end state: the session polls its
    /// drain flag between reads (closing gracefully when the server
    /// drains) and reports its admission counters in `metrics` lines.
    pub fn server(mut self, state: Arc<ServerState>) -> ServeOptions {
        self.server = Some(state);
        self
    }

    /// Dumps a human-readable metrics block to stderr when the session
    /// ends (the `--metrics-text` flag).
    pub fn metrics_text(mut self, enabled: bool) -> ServeOptions {
        self.metrics_text = enabled;
        self
    }

    pub(crate) fn config_ref(&self) -> &ServiceConfig {
        &self.config
    }

    pub(crate) fn caches_ref(&self) -> Option<&CacheSet> {
        self.caches.as_ref()
    }

    /// Serves one NDJSON session over `input`/`output`. Returns when
    /// the input ends or a `shutdown` request arrives, after the
    /// result stream has fully drained.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        input: R,
        output: W,
    ) -> std::io::Result<ServiceSummary> {
        let config = &self.config;
        let caches = self.caches.clone().unwrap_or_else(|| config.cache_set());
        let dfa_tables = caches.dfa.clone();
        // Streaming sessions solve on the reader thread with the same
        // cache set the scheduler's shards use (a clone shares every
        // layer), so batch jobs and streamed sessions warm each other.
        let stream_caches = caches.clone();
        let stream_solver = {
            let mut solver = if stream_caches.query.capacity() > 0 {
                Solver::new(config.engine.solver.clone()).with_cache(stream_caches.query.clone())
            } else {
                Solver::new(config.engine.solver.clone())
            };
            if let Some(tables) = &stream_caches.dfa {
                solver = solver.with_dfa_tables(tables);
            }
            solver
        };
        let scheduler = Scheduler::start(
            SchedulerConfig {
                workers: config.workers,
                max_inflight: config.max_inflight,
            },
            caches,
        );
        let output = Mutex::new(output);
        // One line per call, atomically, so emitter and reader output
        // never interleave mid-line.
        let write_line = |line: &str| -> std::io::Result<()> {
            let mut out = output.lock().expect("output poisoned");
            writeln!(out, "{line}")?;
            out.flush()
        };

        let config_json = config.echo_json();
        // Wall time of each streamed `solve`, mirroring the
        // scheduler's per-job histogram.
        let solve_latency = LatencyHistogram::new();
        // Streaming-session totals survive close_session, so a
        // drain-time `stats`/`metrics` report is complete.
        let mut lifetime = LifetimeCounters::default();
        let mut summary = ServiceSummary::default();
        let mut io_error: Option<std::io::Error> = None;
        // The final `done` line answers in the highest version any
        // request used; a pure-v1 session sees a byte-identical stream
        // to the pre-v2 protocol modulo the `"v":1` prefix.
        let mut stream_version = ProtoVersion::V1;
        // Version each job was submitted in, indexed by job id (the
        // reader is the sole submitter, so ids are dense and the entry
        // is pushed before the submit call that allocates the id).
        let job_versions: Mutex<Vec<ProtoVersion>> = Mutex::new(Vec::new());

        let reader_result = std::thread::scope(|scope| -> std::io::Result<()> {
            let emitter = scope.spawn(|| {
                let mut jobs: u64 = 0;
                let mut first_error: Option<std::io::Error> = None;
                while let Some(completion) = scheduler.next_ordered() {
                    jobs += 1;
                    if first_error.is_some() {
                        // The sink is gone; keep draining so submitters
                        // blocked on backpressure are not wedged.
                        continue;
                    }
                    let version = job_versions
                        .lock()
                        .expect("versions poisoned")
                        .get(completion.id as usize)
                        .copied()
                        .unwrap_or_default();
                    if let Err(e) = write_line(&proto::result_line(&completion, version)) {
                        first_error = Some(e);
                    }
                }
                (jobs, first_error)
            });

            // Session-verb failures are structured v2 errors (the verbs
            // only parse under `"v":2`).
            let reject = |errors: &mut u64, code: ErrorCode, message: String| {
                *errors += 1;
                write_line(&proto::error_line(&RequestError::new(
                    code,
                    message,
                    ProtoVersion::V2,
                )))
            };

            // Cache counters assembled identically for `stats` and
            // `metrics` lines.
            let collect_caches = |active: &Option<StreamState>| -> CacheCounters {
                let caches = scheduler.caches();
                CacheCounters {
                    model: (caches.model.stats().hits, caches.model.stats().misses),
                    query: (caches.query.hits(), caches.query.misses()),
                    verdicts: (caches.verdicts.hits(), caches.verdicts.misses()),
                    dfa: dfa_tables
                        .as_ref()
                        .map(|t| (t.hits(), t.misses()))
                        .unwrap_or_default(),
                    bytes: (
                        caches.model.bytes() as u64,
                        caches.query.bytes() as u64,
                        caches.verdicts.bytes() as u64,
                    ),
                    evictions: (
                        caches.model.evictions(),
                        caches.query.evictions(),
                        caches.verdicts.evictions(),
                    ),
                    session: active.as_ref().map(|stream| {
                        let stats = stream.flips.session_stats();
                        SessionCounters {
                            id: stream.id,
                            depth: stream.flips.depth() as u64,
                            solves: stats.solves,
                            prefix_reuse_hits: stats.prefix_reuse_hits,
                        }
                    }),
                }
            };
            // Lifetime totals including the still-open session's
            // contribution (which close_session would fold in later).
            let lifetime_view =
                |lifetime: &LifetimeCounters, active: &Option<StreamState>| -> LifetimeCounters {
                    let mut view = *lifetime;
                    if let Some(stream) = active {
                        let stats = stream.flips.session_stats();
                        view.solves += stats.solves;
                        view.prefix_reuse_hits += stats.prefix_reuse_hits;
                    }
                    view
                };

            // The reader loop runs inside a closure so an I/O error (a
            // dropped socket, a broken pipe on a status/ack write) cannot
            // `?` past the `close()` below — the emitter only exits once
            // the session is closed, and the scope joins it either way.
            let reader = (|| -> std::io::Result<()> {
                let mut active: Option<StreamState> = None;
                let mut next_session_id: u64 = 0;
                let mut next_explore_id: u64 = 0;
                let mut input = input;
                let mut line_buf = LineBuffer::new();
                loop {
                    let line = match next_line(&mut input, &mut line_buf, config.max_line_bytes)? {
                        LineEvent::Eof => break,
                        LineEvent::TimedOut => {
                            // Socket transports wake the reader
                            // periodically so a drain is noticed even
                            // while the peer is idle.
                            if self.server.as_ref().is_some_and(|s| s.draining()) {
                                write_line(&proto::error_line(&RequestError::new(
                                    ErrorCode::Draining,
                                    "server draining; closing after in-flight work",
                                    stream_version,
                                )))?;
                                break;
                            }
                            continue;
                        }
                        LineEvent::Oversized { dropped } => {
                            summary.request_errors += 1;
                            write_line(&proto::error_line(&RequestError::new(
                                ErrorCode::BadRequest,
                                format!(
                                    "line exceeds the {}-byte limit ({dropped} bytes dropped)",
                                    config.max_line_bytes
                                ),
                                stream_version,
                            )))?;
                            continue;
                        }
                        LineEvent::Line(line) => line,
                    };
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let (request, version) = match proto::parse_request(line) {
                        Err(error) => {
                            summary.request_errors += 1;
                            write_line(&proto::error_line(&error))?;
                            continue;
                        }
                        Ok(parsed) => parsed,
                    };
                    if version == ProtoVersion::V2 {
                        stream_version = ProtoVersion::V2;
                    }
                    match request {
                        Request::Submit(submit) => {
                            if config.load_shed && scheduler.at_capacity() {
                                summary.request_errors += 1;
                                write_line(&proto::error_line(&RequestError::new(
                                    ErrorCode::Overloaded,
                                    format!(
                                        "{} jobs in flight; submission shed — retry later",
                                        config.max_inflight
                                    ),
                                    version,
                                )))?;
                                continue;
                            }
                            // The reader is the only submitter, so the next
                            // id is stable between this read and the
                            // submit call.
                            let next_id = scheduler.progress().submitted;
                            let name = submit
                                .name
                                .clone()
                                .unwrap_or_else(|| format!("job{next_id}"));
                            job_versions
                                .lock()
                                .expect("versions poisoned")
                                .push(version);
                            let id = match job_from_submit(&submit, &name, &config.engine) {
                                Ok(job) => scheduler.submit(job),
                                Err(error) => scheduler.submit_rejected(&name, error),
                            };
                            if submit.ack {
                                write_line(&proto::accepted_line(id, &name, version))?;
                            }
                        }
                        Request::Status => {
                            write_line(&proto::status_line(
                                &scheduler.progress(),
                                scheduler.workers(),
                                version,
                            ))?;
                        }
                        Request::Stats => {
                            write_line(&proto::stats_line(
                                &collect_caches(&active),
                                &scheduler.shard_stats(),
                                &lifetime_view(&lifetime, &active),
                                &config_json,
                                version,
                            ))?;
                        }
                        Request::Metrics => {
                            let progress = scheduler.progress();
                            let report = proto::MetricsReport {
                                workers: scheduler.workers(),
                                jobs: progress.drained,
                                request_errors: summary.request_errors,
                                job_latency: scheduler.latency(),
                                solve_latency: solve_latency.snapshot(),
                                progress,
                                caches: &collect_caches(&active),
                                shards: &scheduler.shard_stats(),
                                lifetime: lifetime_view(&lifetime, &active),
                                server: self.server.as_ref().map(|s| s.admission_counters()),
                                config_json: &config_json,
                            };
                            write_line(&proto::metrics_line(&report, version))?;
                        }
                        Request::Shutdown => break,
                        Request::OpenSession(open) => {
                            if active.is_some() {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::SessionOpen,
                                    "a streaming session is already open on this connection \
                                     (close_session first)"
                                        .to_string(),
                                )?;
                                continue;
                            }
                            let id = next_session_id;
                            next_session_id += 1;
                            let name = open.name.clone().unwrap_or_else(|| format!("session{id}"));
                            let support = open.support.unwrap_or(config.engine.support);
                            // A tenant may lower (never raise) the
                            // service's depth cap for this session.
                            let max_depth = open.max_depth.map_or(config.max_session_depth, |d| {
                                d.min(config.max_session_depth)
                            });
                            let flips = TraceFlipSession::new(
                                support,
                                &stream_solver,
                                config.engine.refinement_limit,
                                &config.engine.build,
                                &stream_caches,
                            )
                            .retractable()
                            .with_inputs_used(open.inputs_used);
                            lifetime.sessions_opened += 1;
                            active = Some(StreamState {
                                id,
                                max_depth,
                                events: Vec::new(),
                                flips,
                            });
                            write_line(&proto::session_opened_line(id, &name))?;
                        }
                        Request::Push(push) => {
                            let Some(stream) = active.as_mut() else {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::NoSession,
                                    "push requires an open session (send open_session first)"
                                        .to_string(),
                                )?;
                                continue;
                            };
                            if stream.flips.depth() >= stream.max_depth {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::DepthLimit,
                                    format!("session depth limit {} reached", stream.max_depth),
                                )?;
                                continue;
                            }
                            // Validate every event reference before
                            // touching session state, so a rejected push
                            // leaves the stack and table untouched.
                            let PushRequest {
                                events,
                                cond,
                                taken,
                            } = *push;
                            let base = stream.events.len();
                            let total = base + events.len();
                            let mut invalid = None;
                            for (i, event) in events.iter().enumerate() {
                                match wire::max_referenced_event(&event.subject) {
                                    // An event subject may reference only
                                    // strictly earlier events.
                                    Some(max) if max >= base + i => {
                                        invalid = Some(format!(
                                            "event {} references event {max}, which is not \
                                             defined before it",
                                            base + i
                                        ));
                                        break;
                                    }
                                    _ => {}
                                }
                            }
                            if invalid.is_none() {
                                if let Some(max) = wire::max_referenced_event(&cond) {
                                    if max >= total {
                                        invalid = Some(format!(
                                            "cond references event {max}, but the session \
                                             defines {total}"
                                        ));
                                    }
                                }
                            }
                            if let Some(message) = invalid {
                                reject(&mut summary.request_errors, ErrorCode::BadEvent, message)?;
                                continue;
                            }
                            stream.events.extend(events);
                            stream.flips.push_clause(&stream.events, &cond, taken);
                            write_line(&proto::pushed_line(stream.id, stream.flips.depth()))?;
                        }
                        Request::Pop => {
                            let Some(stream) = active.as_mut() else {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::NoSession,
                                    "pop requires an open session".to_string(),
                                )?;
                                continue;
                            };
                            if !stream.flips.pop_clause() {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::BadDepth,
                                    "pop at depth 0".to_string(),
                                )?;
                                continue;
                            }
                            write_line(&proto::popped_line(stream.id, stream.flips.depth()))?;
                        }
                        Request::Solve { depth } => {
                            let Some(stream) = active.as_ref() else {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::NoSession,
                                    "solve requires an open session".to_string(),
                                )?;
                                continue;
                            };
                            if depth >= stream.flips.depth() {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::BadDepth,
                                    format!(
                                        "solve depth {depth} out of range (session depth {})",
                                        stream.flips.depth()
                                    ),
                                )?;
                                continue;
                            }
                            let started = Instant::now();
                            let result = stream.flips.solve(depth);
                            solve_latency.record(started.elapsed());
                            write_line(&proto::solved_line(stream.id, depth, &result))?;
                        }
                        Request::CloseSession => {
                            let Some(stream) = active.take() else {
                                reject(
                                    &mut summary.request_errors,
                                    ErrorCode::NoSession,
                                    "close_session requires an open session".to_string(),
                                )?;
                                continue;
                            };
                            let stats = stream.flips.session_stats();
                            lifetime.sessions_closed += 1;
                            lifetime.solves += stats.solves;
                            lifetime.prefix_reuse_hits += stats.prefix_reuse_hits;
                            write_line(&proto::session_closed_line(
                                stream.id,
                                stream.flips.depth(),
                                stats,
                            ))?;
                        }
                        Request::Explore(explore) => {
                            // Exploration runs synchronously on the
                            // reader thread (like streamed solves) with
                            // the connection's shared cache set, so its
                            // progress lines stay ordered with the
                            // requests and the stream is deterministic
                            // at any worker count.
                            let id = next_explore_id;
                            next_explore_id += 1;
                            let name = explore
                                .name
                                .clone()
                                .unwrap_or_else(|| format!("explore{id}"));
                            let program = match parse_program(&explore.program) {
                                Ok(program) => program,
                                Err(e) => {
                                    write_line(&proto::explore_error_line(
                                        id,
                                        &name,
                                        &format!("parse: {e}"),
                                    ))?;
                                    continue;
                                }
                            };
                            let harness = match explore.harness {
                                HarnessKind::Strings => {
                                    Harness::strings(&explore.entry, explore.arity)
                                }
                                HarnessKind::StringArray => {
                                    Harness::string_array(&explore.entry, explore.arity)
                                }
                            };
                            let explore_config = explore_config_for(&explore, &config.engine);
                            let mut stream_error: Option<std::io::Error> = None;
                            let report = explore_observed(
                                &program,
                                &harness,
                                &explore_config,
                                &stream_caches,
                                &mut |progress| {
                                    if stream_error.is_none() {
                                        if let Err(e) =
                                            write_line(&proto::explore_progress_line(id, progress))
                                        {
                                            stream_error = Some(e);
                                        }
                                    }
                                },
                            );
                            if let Some(e) = stream_error {
                                return Err(e);
                            }
                            write_line(&proto::explore_result_line(id, &name, &report))?;
                        }
                    }
                }
                Ok(())
            })();

            scheduler.close();
            let (jobs, emit_error) = emitter.join().expect("emitter panicked");
            summary.jobs = jobs;
            io_error = emit_error;
            reader
        });

        reader_result?;
        if self.metrics_text {
            let progress = scheduler.progress();
            let job_latency = scheduler.latency();
            let solve = solve_latency.snapshot();
            let caches = scheduler.caches();
            eprintln!(
                "metrics: jobs={} request_errors={} sessions={}/{} solves={} prefix_reuse={}",
                summary.jobs,
                summary.request_errors,
                lifetime.sessions_opened,
                lifetime.sessions_closed,
                lifetime.solves,
                lifetime.prefix_reuse_hits,
            );
            eprintln!(
                "metrics: scheduler workers={} submitted={} drained={} queued={} \
                 job_p50_ms={:.3} job_p99_ms={:.3} job_max_ms={:.3}",
                scheduler.workers(),
                progress.submitted,
                progress.drained,
                progress.queued,
                job_latency.p50_ms(),
                job_latency.p99_ms(),
                job_latency.max_ms(),
            );
            eprintln!(
                "metrics: solve count={} p50_ms={:.3} p99_ms={:.3} cache_bytes=[{},{},{}] \
                 cache_evictions=[{},{},{}]",
                solve.count,
                solve.p50_ms(),
                solve.p99_ms(),
                caches.model.bytes(),
                caches.query.bytes(),
                caches.verdicts.bytes(),
                caches.model.evictions(),
                caches.query.evictions(),
                caches.verdicts.evictions(),
            );
        }
        if let Some(error) = io_error {
            return Err(error);
        }
        write_line(&proto::done_line(summary.jobs, stream_version))?;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_lines(lines: &str, config: &ServiceConfig) -> (Vec<String>, ServiceSummary) {
        let mut out: Vec<u8> = Vec::new();
        let summary = ServeOptions::new()
            .config(config.clone())
            .serve(lines.as_bytes(), &mut out)
            .expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        (text.lines().map(str::to_string).collect(), summary)
    }

    fn quick_config(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            engine: EngineConfig {
                max_executions: 6,
                ..EngineConfig::default()
            },
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn submits_stream_results_in_order() {
        let input = concat!(
            r#"{"type":"submit","name":"a","program":"function f(x) { if (x === \"k\") { return 1; } return 0; }"}"#,
            "\n",
            r#"{"type":"submit","name":"b","program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"type":"shutdown"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(2));
        assert_eq!(summary.jobs, 2);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with(r#"{"v":1,"type":"result","job":0,"name":"a""#));
        assert!(lines[1].starts_with(r#"{"v":1,"type":"result","job":1,"name":"b""#));
        assert_eq!(lines[2], r#"{"v":1,"type":"done","jobs":2}"#);
    }

    #[test]
    fn parse_failures_hold_their_slot() {
        let input = concat!(
            r#"{"type":"submit","name":"bad","program":"function f(x) { if ("}"#,
            "\n",
            r#"{"type":"submit","name":"good","program":"function f(x) { return 0; }"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(2));
        assert_eq!(summary.jobs, 2);
        assert!(
            lines[0].contains(r#""job":0,"name":"bad","error":"parse:"#),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains(r#""job":1,"name":"good""#));
    }

    #[test]
    fn malformed_requests_get_error_lines() {
        let input = "this is not json\n{\"type\":\"status\"}\n";
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 1);
        assert!(
            lines[0].starts_with(r#"{"v":1,"type":"error","code":"malformed_json""#),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with(r#"{"v":1,"type":"status""#),
            "{}",
            lines[1]
        );
        assert_eq!(lines[2], r#"{"v":1,"type":"done","jobs":0}"#);
    }

    #[test]
    fn reader_io_error_ends_the_session_instead_of_hanging() {
        // A sink that dies immediately: the first write (the error
        // line for the malformed request) fails. serve() must close
        // the scheduler and return the error — before the fix the
        // reader error skipped `close()` and the scope deadlocked
        // joining the emitter.
        struct DeadSink;
        impl std::io::Write for DeadSink {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let input = "not json\n{\"type\":\"submit\",\"program\":\"function f(x) { return 0; }\"}\n";
        let result = ServeOptions::new()
            .config(quick_config(2))
            .serve(input.as_bytes(), DeadSink);
        let error = result.expect_err("dead sink must surface as an error");
        assert_eq!(error.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn session_support_default_applies_when_submit_omits_it() {
        use expose_core::SupportLevel;
        let defaults = EngineConfig {
            support: SupportLevel::Concrete,
            ..EngineConfig::default()
        };
        let line = r#"{"type":"submit","program":"function f(x) { return 0; }"}"#;
        let (request, _) = crate::proto::parse_request(line).expect("parses");
        let crate::proto::Request::Submit(submit) = request else {
            panic!("submit");
        };
        let job = job_from_submit(&submit, "j", &defaults).expect("parses");
        assert_eq!(job.config.support, SupportLevel::Concrete);

        let line =
            r#"{"type":"submit","program":"function f(x) { return 0; }","support":"modeling"}"#;
        let (request, _) = crate::proto::parse_request(line).expect("parses");
        let crate::proto::Request::Submit(submit) = request else {
            panic!("submit");
        };
        let job = job_from_submit(&submit, "j", &defaults).expect("parses");
        assert_eq!(job.config.support, SupportLevel::Modeling);
    }

    #[test]
    fn cache_set_carries_byte_budgets() {
        let config = ServiceConfig {
            model_cache_byte_budget: 1024,
            query_cache_byte_budget: 2048,
            ..ServiceConfig::default()
        };
        let caches = config.cache_set();
        assert_eq!(caches.model.byte_budget(), 1024);
        assert_eq!(caches.query.byte_budget(), 2048);
        // The defaults are bounded, not unlimited.
        let defaults = ServiceConfig::default().cache_set();
        assert!(defaults.model.byte_budget() > 0);
        assert!(defaults.query.byte_budget() > 0);
    }

    #[test]
    fn stats_and_ack_lines_render() {
        let input = concat!(
            r#"{"type":"submit","name":"a","ack":true,"program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"type":"stats"}"#,
            "\n",
        );
        let (lines, _) = run_lines(input, &quick_config(1));
        assert_eq!(lines[0], r#"{"v":1,"type":"accepted","job":0,"name":"a"}"#);
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with(r#"{"v":1,"type":"stats""#)),
            "{lines:?}"
        );
    }

    #[test]
    fn response_versions_follow_the_request() {
        let input = concat!(
            r#"{"type":"submit","name":"a","program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"v":2,"type":"submit","name":"b","program":"function f(x) { return 0; }"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.jobs, 2);
        assert!(
            lines[0].starts_with(r#"{"v":1,"type":"result","job":0"#),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with(r#"{"v":2,"type":"result","job":1"#),
            "{}",
            lines[1]
        );
        // The done line answers in the highest version the stream used.
        assert_eq!(lines[2], r#"{"v":2,"type":"done","jobs":2}"#);
    }

    #[test]
    fn session_misuse_yields_structured_errors() {
        let input = concat!(
            r#"{"v":2,"type":"pop"}"#,
            "\n",
            r#"{"v":2,"type":"open_session","name":"s"}"#,
            "\n",
            r#"{"v":2,"type":"open_session","name":"t"}"#,
            "\n",
            r#"{"v":2,"type":"pop"}"#,
            "\n",
            r#"{"v":2,"type":"solve","depth":0}"#,
            "\n",
            r#"{"v":2,"type":"push","cond":["test",3],"taken":true}"#,
            "\n",
            r#"{"v":2,"type":"close_session"}"#,
            "\n",
            r#"{"v":2,"type":"close_session"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.jobs, 0);
        assert_eq!(summary.request_errors, 6);
        assert!(lines[0].contains(r#""code":"no_session""#), "{}", lines[0]);
        assert_eq!(
            lines[1],
            r#"{"v":2,"type":"session_opened","session":0,"name":"s"}"#
        );
        assert!(
            lines[2].contains(r#""code":"session_open""#),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains(r#""code":"bad_depth""#), "{}", lines[3]);
        assert!(lines[4].contains(r#""code":"bad_depth""#), "{}", lines[4]);
        assert!(lines[5].contains(r#""code":"bad_event""#), "{}", lines[5]);
        assert!(
            lines[6].starts_with(r#"{"v":2,"type":"session_closed","session":0,"depth":0"#),
            "{}",
            lines[6]
        );
        assert!(lines[7].contains(r#""code":"no_session""#), "{}", lines[7]);
    }

    #[test]
    fn streamed_session_solves_and_reports_stats() {
        // Push `/^a+$/.test(in0)` taken=true, flip it at depth 0: the
        // flipped query asks for a subject *not* matching ^a+$, which
        // is satisfiable.
        let input = concat!(
            r#"{"v":2,"type":"open_session","name":"t","inputs_used":1}"#,
            "\n",
            r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
            "\n",
            r#"{"v":2,"type":"solve","depth":0}"#,
            "\n",
            r#"{"v":2,"type":"stats"}"#,
            "\n",
            r#"{"v":2,"type":"close_session"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 0, "{lines:?}");
        assert_eq!(lines[1], r#"{"v":2,"type":"pushed","session":0,"depth":1}"#);
        assert!(
            lines[2].starts_with(r#"{"v":2,"type":"solved","session":0,"depth":0,"sat":true"#),
            "{}",
            lines[2]
        );
        let stats = &lines[3];
        assert!(
            stats.contains(r#""session":{"id":0,"depth":1,"solves":"#),
            "{stats}"
        );
        assert!(
            lines[4].starts_with(r#"{"v":2,"type":"session_closed","session":0,"depth":1"#),
            "{}",
            lines[4]
        );
    }

    #[test]
    fn explore_streams_progress_and_result() {
        let input = concat!(
            r#"{"v":2,"type":"explore","name":"e0","iterations":4,"program":"function f(x) { if (/^[a-z]+$/.test(x)) { if (x === \"deep\") { return 2; } return 1; } return 0; }"}"#,
            "\n",
            r#"{"v":2,"type":"explore","name":"bad","program":"function f(x) { if ("}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 0, "{lines:?}");
        let progress: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains(r#""type":"explore_progress""#))
            .collect();
        // One line per iteration; the loop may exhaust its frontier
        // before the 4-iteration budget.
        assert!(
            (2..=4).contains(&progress.len()),
            "{} progress lines: {lines:?}",
            progress.len()
        );
        assert!(
            progress[0]
                .starts_with(r#"{"v":2,"type":"explore_progress","explore":0,"iteration":1"#),
            "{}",
            progress[0]
        );
        let result = lines
            .iter()
            .find(|l| l.contains(r#""type":"explore_result","explore":0"#))
            .expect("result line");
        assert!(result.contains(r#""name":"e0""#), "{result}");
        assert!(result.contains(r#""stopped":""#), "{result}");
        assert!(result.contains(r#""corpus_digest":""#), "{result}");
        // The parse failure still yields a terminal explore_result.
        let failed = lines
            .iter()
            .find(|l| l.contains(r#""type":"explore_result","explore":1"#))
            .expect("error line");
        assert!(failed.contains(r#""error":"parse:"#), "{failed}");
    }

    #[test]
    fn explore_stream_is_flip_worker_invariant() {
        let input = concat!(
            r#"{"v":2,"type":"explore","name":"e","iterations":6,"program":"function f(x) { let m = /^<([a-z]+)>$/.exec(x); if (m) { if (m[1] === \"timeout\") { return 1; } return 2; } return 0; }"}"#,
            "\n",
        );
        let run_at = |flip_workers: usize| {
            let config = ServiceConfig {
                engine: EngineConfig {
                    flip_workers,
                    ..EngineConfig::default()
                },
                ..quick_config(1)
            };
            run_lines(input, &config).0
        };
        let serial = run_at(1);
        assert_eq!(serial, run_at(2));
        assert_eq!(serial, run_at(8));
    }

    #[test]
    fn metrics_line_reports_lifetime_and_config() {
        let input = concat!(
            r#"{"v":2,"type":"open_session","name":"s","inputs_used":1}"#,
            "\n",
            r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
            "\n",
            r#"{"v":2,"type":"solve","depth":0}"#,
            "\n",
            r#"{"v":2,"type":"close_session"}"#,
            "\n",
            r#"{"type":"submit","name":"a","program":"function f(x) { return 0; }"}"#,
            "\n",
            r#"{"v":2,"type":"metrics"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 0, "{lines:?}");
        let metrics = lines
            .iter()
            .find(|l| l.contains(r#""type":"metrics""#))
            .expect("metrics line");
        assert!(
            metrics.starts_with(r#"{"v":2,"type":"metrics""#),
            "{metrics}"
        );
        // The closed session's solves survive in the lifetime totals.
        assert!(
            metrics.contains(r#""lifetime":{"sessions_opened":1,"sessions_closed":1,"solves":1"#),
            "{metrics}"
        );
        assert!(metrics.contains(r#""job_latency":{"count":"#), "{metrics}");
        assert!(
            metrics.contains(r#""solve_latency":{"count":1"#),
            "{metrics}"
        );
        assert!(metrics.contains(r#""queued":"#), "{metrics}");
        assert!(
            metrics.contains(r#""config":{"workers":1,"max_inflight":256"#),
            "{metrics}"
        );
        // No front-end: no server object.
        assert!(!metrics.contains(r#""server":"#), "{metrics}");
    }

    #[test]
    fn stats_echo_config_and_keep_lifetime_after_close() {
        let input = concat!(
            r#"{"v":2,"type":"open_session","name":"s","inputs_used":1}"#,
            "\n",
            r#"{"v":2,"type":"push","events":[{"regex":"^b+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
            "\n",
            r#"{"v":2,"type":"solve","depth":0}"#,
            "\n",
            r#"{"v":2,"type":"close_session"}"#,
            "\n",
            r#"{"v":2,"type":"stats"}"#,
            "\n",
        );
        let (lines, summary) = run_lines(input, &quick_config(1));
        assert_eq!(summary.request_errors, 0, "{lines:?}");
        let stats = lines
            .iter()
            .find(|l| l.contains(r#""type":"stats""#))
            .expect("stats line");
        // The session is closed (no "session" object), but its counters
        // survive in the lifetime totals.
        assert!(!stats.contains(r#""session":{"#), "{stats}");
        assert!(
            stats.contains(r#""lifetime":{"sessions_opened":1,"sessions_closed":1,"solves":1"#),
            "{stats}"
        );
        assert!(stats.contains(r#""config":{"workers":1"#), "{stats}");
    }

    #[test]
    fn open_session_max_depth_override_is_clamped() {
        let push =
            r#"{"v":2,"type":"push","events":[],"cond":["test",0],"taken":true}"#.to_string();
        // A session that lowers the cap to 1: the second push must be
        // rejected with depth_limit.
        let event_push = r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#;
        let input = format!(
            "{}\n{}\n{}\n",
            r#"{"v":2,"type":"open_session","name":"s","inputs_used":1,"max_depth":1}"#,
            event_push,
            push,
        );
        let (lines, summary) = run_lines(&input, &quick_config(1));
        assert_eq!(summary.request_errors, 1, "{lines:?}");
        assert!(lines[2].contains(r#""code":"depth_limit""#), "{}", lines[2]);
        assert!(lines[2].contains("depth limit 1"), "{}", lines[2]);
    }

    #[test]
    fn oversized_line_is_bad_request_not_fatal() {
        let config = ServiceConfig {
            max_line_bytes: 128,
            ..quick_config(1)
        };
        let long = format!(
            r#"{{"type":"submit","name":"big","program":"function f(x) {{ return {}; }}"}}"#,
            "\"x\"".repeat(200)
        );
        let input = format!("{long}\n{}\n", r#"{"type":"status"}"#);
        let (lines, summary) = run_lines(&input, &config);
        assert_eq!(summary.request_errors, 1);
        assert!(
            lines[0].contains(r#""code":"bad_request""#) && lines[0].contains("byte limit"),
            "{}",
            lines[0]
        );
        // The session keeps serving after the oversized line.
        assert!(lines[1].contains(r#""type":"status""#), "{}", lines[1]);
        assert_eq!(lines[2], r#"{"v":1,"type":"done","jobs":0}"#);
    }

    #[test]
    fn load_shed_answers_overloaded_at_the_inflight_bound() {
        // One worker, inflight bound 1, shedding on: the first submit
        // occupies the slot, and with the reader never draining until
        // close, later submits shed deterministically once the bound
        // is visibly reached. Use a slow job to hold the slot.
        let config = ServiceConfig {
            max_inflight: 1,
            load_shed: true,
            ..quick_config(1)
        };
        let slow = r#"{"type":"submit","name":"slow","program":"function f(x) { if (/^[a-z]+[0-9]+$/.test(x)) { return 1; } return 0; }"}"#;
        let input = format!("{slow}\n{slow}\n{slow}\n");
        let (lines, summary) = run_lines(&input, &config);
        // At least one later submit hit the bound and was shed; the
        // first always runs.
        let results = lines
            .iter()
            .filter(|l| l.contains(r#""type":"result""#))
            .count();
        let shed = lines
            .iter()
            .filter(|l| l.contains(r#""code":"overloaded""#))
            .count();
        assert_eq!(results + shed, 3, "{lines:?}");
        assert!(results >= 1, "{lines:?}");
        assert_eq!(summary.request_errors as usize, shed);
    }
}

//! Service byte-identity: the NDJSON `result` stream of a session must
//! be byte-identical for any worker count, and equal to the serial
//! one-worker batch reference rendered through the same formatter — the
//! in-process version of the `service-smoke` CI job.

use expose_dse::sched::Completion;
use expose_dse::{BatchOptions, Job};
use expose_service::session::job_from_submit;
use expose_service::{proto, ProtoVersion, Request, ServeOptions, ServiceConfig};

/// Small-budget submit lines over a seeded generated corpus (the
/// suite runs in debug CI; the quick bench budget is too slow here).
fn submit_lines(programs: usize, seed: u64) -> Vec<String> {
    corpus::generate_dse_programs(programs, seed)
        .into_iter()
        .map(|p| {
            format!(
                "{{\"type\":\"submit\",\"name\":{},\"entry\":{},\"arity\":{},\
                 \"max_executions\":3,\"max_steps\":10000,\"program\":{}}}",
                expose_service::json::escaped(&p.name),
                expose_service::json::escaped(&p.entry),
                p.arity,
                expose_service::json::escaped(&p.source),
            )
        })
        .collect()
}

fn serve_session(input: &str, workers: usize) -> String {
    let mut output: Vec<u8> = Vec::new();
    let config = ServiceConfig {
        workers,
        ..ServiceConfig::default()
    };
    ServeOptions::new()
        .config(config)
        .serve(input.as_bytes(), &mut output)
        .expect("serve");
    String::from_utf8(output).expect("utf8")
}

#[test]
fn stream_is_byte_identical_across_worker_counts() {
    let mut input = submit_lines(4, 0x5eed21).join("\n");
    input.push_str("\n{\"type\":\"shutdown\"}\n");

    let serial = serve_session(&input, 1);
    assert_eq!(serial.lines().count(), 5, "4 results + done:\n{serial}");
    for workers in [2, 8] {
        let streamed = serve_session(&input, workers);
        assert_eq!(
            serial, streamed,
            "workers={workers} changed the byte stream"
        );
    }
}

#[test]
fn stream_matches_the_serial_batch_reference() {
    let lines = submit_lines(4, 0x5eed22);
    let mut input = lines.join("\n");
    input.push('\n');

    // The reference: parse the same submits, run them through a
    // one-worker batch, render with the same formatter — exactly
    // what `expose-serve --batch` does.
    let config = ServiceConfig::default();
    let mut named: Vec<(String, Job)> = Vec::new();
    for line in &lines {
        let (request, _) = proto::parse_request(line).expect("parses");
        let Request::Submit(submit) = request else {
            panic!("submit line");
        };
        let name = submit.name.clone().expect("corpus lines are named");
        let job = job_from_submit(&submit, &name, &config.engine).expect("parses");
        named.push((name, job));
    }
    let reports = BatchOptions::new()
        .workers(1)
        .run(named.iter().map(|(_, j)| j.clone()).collect());
    let mut reference = String::new();
    for (id, ((name, _), report)) in named.into_iter().zip(reports).enumerate() {
        reference.push_str(&proto::result_line(
            &Completion {
                id: id as u64,
                name,
                outcome: Ok(report),
            },
            ProtoVersion::V1,
        ));
        reference.push('\n');
    }
    reference.push_str(&proto::done_line(lines.len() as u64, ProtoVersion::V1));
    reference.push('\n');

    let streamed = serve_session(&input, 8);
    assert_eq!(streamed, reference);
}

#[test]
fn control_requests_do_not_perturb_the_result_stream() {
    let lines = submit_lines(4, 0x5eed23);
    let plain = format!("{}\n", lines.join("\n"));
    let mut chatty = String::new();
    for (i, line) in lines.iter().enumerate() {
        chatty.push_str(line);
        chatty.push('\n');
        if i % 2 == 0 {
            chatty.push_str("{\"type\":\"status\"}\n");
        }
    }
    chatty.push_str("{\"type\":\"stats\"}\n");

    let filter_results = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| {
                l.starts_with("{\"v\":1,\"type\":\"result\"")
                    || l.starts_with("{\"v\":1,\"type\":\"done\"")
            })
            .map(str::to_string)
            .collect()
    };
    let plain_out = filter_results(&serve_session(&plain, 4));
    let chatty_out = filter_results(&serve_session(&chatty, 4));
    assert_eq!(plain_out, chatty_out);
    assert_eq!(plain_out.len(), 5, "4 results + done");
}

#[test]
fn every_output_line_is_valid_json_and_versioned() {
    let mut input = submit_lines(3, 0x5eed24).join("\n");
    input.push_str("\nnot json\n{\"type\":\"status\"}\n{\"type\":\"stats\"}\n");
    let output = serve_session(&input, 2);
    assert!(!output.is_empty());
    for line in output.lines() {
        expose_service::json::parse(line)
            .unwrap_or_else(|e| panic!("invalid output line {line:?}: {e}"));
        assert!(
            line.starts_with("{\"v\":"),
            "response line must lead with its protocol version: {line}"
        );
    }
}

//! Transport-matrix differential tests.
//!
//! The protocol's determinism contract says a session's response
//! stream depends only on its input lines — never on the transport
//! that carried them or the worker count that solved them. These
//! tests byte-diff the 21-workload corpus stream across stdio, Unix
//! sockets, and TCP at workers 1/2/8, and then poke the TCP front-end
//! with the traffic a real network produces: partial lines, mid-frame
//! disconnects, oversized lines, and more clients than the admission
//! cap allows. Malformed input must yield structured `error` lines —
//! never a panic, never a hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use expose_service::{
    corpus_submit_lines, serve_listener, CorpusBudget, Listen, ServeOptions, ServerState,
    ServiceConfig,
};

/// The 21-workload corpus (11 library + 10 generated programs),
/// trimmed to a tiny execution budget so the whole matrix stays fast.
fn corpus_input() -> String {
    let mut input = String::new();
    for line in corpus_submit_lines(10, CorpusBudget::Quick) {
        input.push_str(&line.replace(
            "\"max_executions\":40,\"max_steps\":50000",
            "\"max_executions\":3,\"max_steps\":10000",
        ));
        input.push('\n');
    }
    input.push_str("{\"type\":\"shutdown\"}\n");
    input
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig::default().workers(workers)
}

/// Serves `input` over the in-process stdio path.
fn serve_stdio(input: &str, workers: usize) -> String {
    let mut out = Vec::new();
    ServeOptions::new()
        .config(config(workers))
        .serve(input.as_bytes(), &mut out)
        .expect("stdio serve");
    String::from_utf8(out).expect("utf8 output")
}

/// Binds `spec`, runs the accept loop on a scoped thread, hands the
/// bound address and the shared [`ServerState`] to `client`, then
/// drains and joins.
fn run_server<T>(
    spec: &str,
    config: ServiceConfig,
    client: impl FnOnce(&str, &Arc<ServerState>) -> T,
) -> T {
    let listen = Listen::parse(spec).expect("spec parses");
    let mut listener = listen.bind().expect("bind");
    let addr = listener.local_addr();
    let state = ServerState::new();
    let options = ServeOptions::new().config(config);
    std::thread::scope(|scope| {
        let server_state = Arc::clone(&state);
        let server = scope.spawn(move || {
            serve_listener(listener.as_mut(), &options, &server_state).expect("serve_listener")
        });
        let out = client(&addr, &state);
        state.begin_drain();
        server.join().expect("server thread");
        out
    })
}

/// Writes `input` over one TCP connection and reads the stream to EOF.
fn tcp_exchange(addr: &str, input: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(input.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut out = String::new();
    BufReader::new(stream)
        .read_to_string(&mut out)
        .expect("read");
    out
}

#[cfg(unix)]
fn unix_exchange(addr: &str, input: &str) -> String {
    use std::os::unix::net::UnixStream;

    let path = addr.strip_prefix("unix:").expect("unix addr");
    let stream = UnixStream::connect(path).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(input.as_bytes()).expect("write");
    writer.flush().expect("flush");
    let mut out = String::new();
    BufReader::new(stream)
        .read_to_string(&mut out)
        .expect("read");
    out
}

#[test]
fn corpus_stream_is_byte_identical_across_transports_and_workers() {
    let input = corpus_input();
    let reference = serve_stdio(&input, 1);
    assert!(reference.contains("\"type\":\"done\""));
    assert_eq!(
        reference.matches("\"type\":\"result\"").count(),
        21,
        "one result line per corpus workload"
    );
    for workers in [1usize, 2, 8] {
        let stdio = serve_stdio(&input, workers);
        assert_eq!(stdio, reference, "stdio diverged at workers={workers}");

        let tcp = run_server("tcp:127.0.0.1:0", config(workers), |addr, _| {
            tcp_exchange(addr, &input)
        });
        assert_eq!(tcp, reference, "tcp diverged at workers={workers}");

        #[cfg(unix)]
        {
            let path = std::env::temp_dir().join(format!(
                "expose-matrix-{}-{workers}.sock",
                std::process::id()
            ));
            let spec = format!("unix:{}", path.display());
            let unix = run_server(&spec, config(workers), |addr, _| {
                unix_exchange(addr, &input)
            });
            assert_eq!(unix, reference, "unix diverged at workers={workers}");
        }
    }
}

#[test]
fn partial_line_and_mid_frame_disconnect_end_cleanly() {
    run_server("tcp:127.0.0.1:0", config(1), |addr, _| {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        // One whole request, then a request cut off mid-frame by the
        // peer vanishing (write half closed, no newline ever comes).
        writer
            .write_all(b"{\"type\":\"status\"}\n{\"type\":\"sub")
            .expect("write");
        writer.flush().expect("flush");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut out = String::new();
        BufReader::new(stream)
            .read_to_string(&mut out)
            .expect("read");
        assert!(out.contains("\"type\":\"status\""), "served: {out}");
        assert!(
            out.contains("\"code\":\"malformed_json\""),
            "the truncated frame must come back as a structured error: {out}"
        );
        assert!(
            out.contains("\"type\":\"done\""),
            "the session must still close with its done line: {out}"
        );
    });
}

#[test]
fn oversized_line_is_rejected_but_the_connection_keeps_serving() {
    run_server(
        "tcp:127.0.0.1:0",
        config(1).max_line_bytes(256),
        |addr, _| {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut writer = stream.try_clone().expect("clone");
            let huge = format!(
                "{{\"type\":\"submit\",\"junk\":\"{}\"}}\n",
                "x".repeat(4096)
            );
            writer.write_all(huge.as_bytes()).expect("write huge");
            writer
                .write_all(b"{\"type\":\"status\"}\n{\"type\":\"shutdown\"}\n")
                .expect("write tail");
            writer.flush().expect("flush");
            let mut out = String::new();
            BufReader::new(stream)
                .read_to_string(&mut out)
                .expect("read");
            assert!(
                out.contains("\"code\":\"bad_request\"") && out.contains("byte limit"),
                "oversized line must be a bad_request: {out}"
            );
            assert!(
                out.contains("\"type\":\"status\""),
                "the connection must keep serving after the rejection: {out}"
            );
            assert!(out.contains("\"type\":\"done\""), "clean close: {out}");
        },
    );
}

#[test]
fn admission_control_refuses_beyond_the_cap_and_while_draining() {
    run_server(
        "tcp:127.0.0.1:0",
        config(1).max_connections(1),
        |addr, state| {
            let first = TcpStream::connect(addr).expect("first connect");
            // Wait for the accept loop to admit the first tenant.
            let mut waited = Duration::ZERO;
            while state.active() < 1 {
                assert!(
                    waited < Duration::from_secs(10),
                    "first connection not admitted"
                );
                std::thread::sleep(Duration::from_millis(20));
                waited += Duration::from_millis(20);
            }

            // A second tenant is over the cap: one structured
            // `overloaded` line, then the connection closes.
            let second = TcpStream::connect(addr).expect("second connect");
            let mut line = String::new();
            BufReader::new(second)
                .read_line(&mut line)
                .expect("read refusal");
            assert!(
                line.contains("\"code\":\"overloaded\""),
                "over-cap refusal: {line}"
            );

            // Once a drain begins, everyone new is refused with
            // `draining`…
            state.begin_drain();
            let third = TcpStream::connect(addr).expect("third connect");
            let mut line = String::new();
            BufReader::new(third)
                .read_line(&mut line)
                .expect("read refusal");
            assert!(
                line.contains("\"code\":\"draining\""),
                "drain refusal: {line}"
            );

            // …and the admitted session is told, flushed, and closed
            // with its done line.
            let mut out = String::new();
            BufReader::new(first)
                .read_to_string(&mut out)
                .expect("read drain close");
            assert!(out.contains("\"code\":\"draining\""), "drain notice: {out}");
            assert!(out.contains("\"type\":\"done\""), "clean close: {out}");
        },
    );
}

//! Streaming-protocol byte-identity: a trace replayed clause by clause
//! through wire `push`/`solve` requests must produce exactly the
//! verdict trail of the whole-program run — at any worker count — and
//! every misuse of the session verbs must come back as a structured
//! error, never a panic or a torn stream.

use expose_dse::{parser::parse_program, EngineConfig, Harness, Job};
use expose_service::json::{self, Value};
use expose_service::proto::verdict_digest;
use expose_service::stream::{fold_responses, record_stream};
use expose_service::{ServeOptions, ServiceConfig};

fn quick_engine() -> EngineConfig {
    EngineConfig {
        max_executions: 3,
        max_steps: 10_000,
        ..EngineConfig::default()
    }
}

fn quick_jobs(programs: usize, seed: u64) -> Vec<Job> {
    corpus::generate_dse_programs(programs, seed)
        .into_iter()
        .map(|p| Job {
            name: p.name.clone(),
            program: parse_program(&p.source).expect("corpus program parses"),
            harness: Harness::strings(&p.entry, p.arity),
            config: quick_engine(),
        })
        .collect()
}

fn submit_line(job: &Job, source: &str) -> String {
    format!(
        "{{\"type\":\"submit\",\"name\":{},\"entry\":{},\"arity\":{},\
         \"max_executions\":3,\"max_steps\":10000,\"program\":{}}}",
        json::escaped(&job.name),
        json::escaped(job.harness.entry.as_deref().expect("corpus entry")),
        job.harness.args.len(),
        json::escaped(source),
    )
}

fn serve_text(input: &str, config: &ServiceConfig) -> String {
    let mut out: Vec<u8> = Vec::new();
    ServeOptions::new()
        .config(config.clone())
        .serve(input.as_bytes(), &mut out)
        .expect("serve");
    String::from_utf8(out).expect("utf8")
}

/// The `verdicts` digest of the first `result` line in a served stream.
fn result_digest(output: &str) -> String {
    output
        .lines()
        .find_map(|line| {
            let value = json::parse(line).ok()?;
            if value.get("type").and_then(Value::as_str) != Some("result") {
                return None;
            }
            value
                .get("verdicts")
                .and_then(Value::as_str)
                .map(str::to_string)
        })
        .expect("stream has a result line with a verdicts digest")
}

#[test]
fn streamed_digest_matches_whole_program_submit_across_workers() {
    let sources: Vec<String> = corpus::generate_dse_programs(3, 0x57e4)
        .into_iter()
        .map(|p| p.source)
        .collect();
    let jobs = quick_jobs(3, 0x57e4);
    let mut saw_multi_flip = false;
    for (job, source) in jobs.iter().zip(&sources) {
        let recording = record_stream(job);
        let reference = verdict_digest(&recording.report);
        saw_multi_flip |= recording.max_session_flips >= 2;

        // One connection interleaves the whole-program submit (routed
        // through the scheduler) with the streamed sessions (solved on
        // the reader thread): both must land on the same digest.
        let mut input = submit_line(job, source);
        input.push('\n');
        for line in &recording.script {
            input.push_str(line);
            input.push('\n');
        }

        let mut outputs = Vec::new();
        for workers in [1, 8] {
            let config = ServiceConfig {
                workers,
                ..ServiceConfig::default()
            };
            let output = serve_text(&input, &config);
            let folded = fold_responses(output.lines()).expect("responses parse");
            assert_eq!(folded.errors, 0, "{}: {output}", job.name);
            assert_eq!(
                folded.digest, reference,
                "{} workers={workers}: streamed digest diverged",
                job.name
            );
            assert_eq!(
                result_digest(&output),
                format!("{reference:016x}"),
                "{} workers={workers}: submit digest diverged",
                job.name
            );
            outputs.push(output);
        }
        // The result line lands asynchronously relative to the
        // synchronous session responses, so its interleaving position
        // is scheduling-dependent — but each substream (batch results,
        // session responses) must be byte-identical on its own.
        let split = |output: &str| -> (Vec<String>, Vec<String>) {
            output
                .lines()
                .map(str::to_string)
                .partition(|l| l.contains("\"type\":\"result\"") || l.contains("\"type\":\"done\""))
        };
        assert_eq!(
            split(&outputs[0]),
            split(&outputs[1]),
            "{}: stream bytes changed with the worker count",
            job.name
        );
    }
    assert!(
        saw_multi_flip,
        "corpus must include at least one multi-flip trace"
    );
}

#[test]
fn pop_and_repush_resolves_byte_identically() {
    // Two independent regex clauses; solve depth 1, retract it, re-push
    // the same clause (its event is already in the append-only table),
    // and solve again: the two depth-1 solved lines must be identical.
    let input = concat!(
        r#"{"v":2,"type":"open_session","name":"rp","inputs_used":2}"#,
        "\n",
        r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
        "\n",
        r#"{"v":2,"type":"solve","depth":0}"#,
        "\n",
        r#"{"v":2,"type":"push","events":[{"regex":"^b+$","flags":"","subject":["in",1]}],"cond":["test",1],"taken":false}"#,
        "\n",
        r#"{"v":2,"type":"solve","depth":1}"#,
        "\n",
        r#"{"v":2,"type":"pop"}"#,
        "\n",
        r#"{"v":2,"type":"push","events":[],"cond":["test",1],"taken":false}"#,
        "\n",
        r#"{"v":2,"type":"solve","depth":1}"#,
        "\n",
        r#"{"v":2,"type":"close_session"}"#,
        "\n",
    );
    let output = serve_text(input, &ServiceConfig::default());
    let lines: Vec<&str> = output.lines().collect();
    let solved: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"solved\""))
        .collect();
    assert_eq!(solved.len(), 3, "{output}");
    assert_eq!(
        solved[1], solved[2],
        "re-pushed clause must solve byte-identically"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with(r#"{"v":2,"type":"popped","session":0,"depth":1}"#)),
        "{output}"
    );
    assert!(
        !output.contains("\"type\":\"error\""),
        "clean script must produce no errors: {output}"
    );
}

#[test]
fn session_misuse_is_structured_never_fatal() {
    let config = ServiceConfig {
        max_session_depth: 2,
        ..ServiceConfig::default()
    };
    let push = r#"{"v":2,"type":"push","events":[],"cond":["bool",true],"taken":true}"#;
    let input = [
        // Session verbs with no session open.
        r#"{"v":2,"type":"pop"}"#,
        r#"{"v":2,"type":"solve","depth":0}"#,
        r#"{"v":2,"type":"close_session"}"#,
        // Session verb without v2.
        r#"{"type":"pop"}"#,
        // Open, then a second interleaved open on the same connection.
        r#"{"v":2,"type":"open_session","name":"m"}"#,
        r#"{"v":2,"type":"open_session","name":"n"}"#,
        // Bad depths and bad event references.
        r#"{"v":2,"type":"pop"}"#,
        r#"{"v":2,"type":"solve","depth":0}"#,
        r#"{"v":2,"type":"push","events":[],"cond":["test",9],"taken":true}"#,
        r#"{"v":2,"type":"push","events":[{"regex":"a","flags":"","subject":["cap",5,0]}],"cond":["bool",true],"taken":true}"#,
        // Fill to the depth limit, then one more.
        push,
        push,
        push,
        // Close, then use the closed session.
        r#"{"v":2,"type":"close_session"}"#,
        r#"{"v":2,"type":"solve","depth":0}"#,
    ]
    .join("\n");
    let output = serve_text(&input, &config);
    let codes: Vec<String> = output
        .lines()
        .filter_map(|line| {
            let value = json::parse(line).ok()?;
            if value.get("type").and_then(Value::as_str) != Some("error") {
                return None;
            }
            value
                .get("code")
                .and_then(Value::as_str)
                .map(str::to_string)
        })
        .collect();
    assert_eq!(
        codes,
        vec![
            "no_session",
            "no_session",
            "no_session",
            "unsupported_version",
            "session_open",
            "bad_depth",
            "bad_depth",
            "bad_event",
            "bad_event",
            "depth_limit",
            "no_session",
        ],
        "{output}"
    );
    // Every line is versioned, valid JSON, and the stream still closes.
    for line in output.lines() {
        json::parse(line).unwrap_or_else(|e| panic!("invalid line {line:?}: {e}"));
        assert!(line.starts_with("{\"v\":"), "{line}");
    }
    assert!(output.contains("\"type\":\"done\""), "{output}");
}

#[test]
fn stats_report_session_depth_and_prefix_reuse() {
    let input = concat!(
        r#"{"v":2,"type":"open_session","name":"st","inputs_used":1}"#,
        "\n",
        r#"{"v":2,"type":"push","events":[{"regex":"^a+$","flags":"","subject":["in",0]}],"cond":["test",0],"taken":true}"#,
        "\n",
        r#"{"v":2,"type":"push","events":[{"regex":"^[0-9]+$","flags":"","subject":["in",0]}],"cond":["test",1],"taken":false}"#,
        "\n",
        r#"{"v":2,"type":"solve","depth":0}"#,
        "\n",
        r#"{"v":2,"type":"solve","depth":1}"#,
        "\n",
        r#"{"v":2,"type":"stats"}"#,
        "\n",
        r#"{"v":2,"type":"close_session"}"#,
        "\n",
        r#"{"v":2,"type":"stats"}"#,
        "\n",
    );
    let output = serve_text(input, &ServiceConfig::default());
    let stats: Vec<Value> = output
        .lines()
        .filter(|l| l.contains("\"type\":\"stats\""))
        .map(|l| json::parse(l).expect("stats parses"))
        .collect();
    assert_eq!(stats.len(), 2, "{output}");
    let session = stats[0].get("session").expect("open session in stats");
    assert_eq!(session.get("id").and_then(Value::as_u64), Some(0));
    assert_eq!(session.get("depth").and_then(Value::as_u64), Some(2));
    let solves = session
        .get("solves")
        .and_then(Value::as_u64)
        .expect("solves");
    assert!(solves >= 2, "{output}");
    let reuse = session
        .get("prefix_reuse_hits")
        .and_then(Value::as_u64)
        .expect("prefix_reuse_hits");
    assert!(reuse >= 1, "depth-1 solve must reuse a frame: {output}");
    // After close_session the stats line carries no session object.
    assert!(stats[1].get("session").is_none(), "{output}");
}

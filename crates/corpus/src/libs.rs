//! The Table 6 library workloads.
//!
//! Eleven mini-JS programs modeled after the NPM libraries of the
//! paper's head-to-head comparison (§7.2): each captures the regex-heavy
//! entry path of the named package (tag parsing for `fast-xml-parser`,
//! version parsing for `semver`, truthy-string detection for `yn`, …).
//! The programs run on the `expose-dse` engine; their sources use only
//! the mini language.

/// One Table 6 workload.
#[derive(Debug, Clone, Copy)]
pub struct LibraryWorkload {
    /// The NPM package the workload is modeled after.
    pub name: &'static str,
    /// Mini-JS source.
    pub source: &'static str,
    /// Entry function.
    pub entry: &'static str,
    /// Number of symbolic string arguments.
    pub arity: usize,
}

/// All eleven workloads, in Table 6 row order.
pub fn library_workloads() -> Vec<LibraryWorkload> {
    vec![
        LibraryWorkload {
            name: "babel-eslint",
            entry: "lex",
            arity: 1,
            source: r#"
function lex(src) {
    if (/^\s*$/.test(src)) { return "empty"; }
    if (/^[0-9]+$/.test(src)) { return "number"; }
    if (/^[a-zA-Z_$][a-zA-Z0-9_$]*$/.test(src)) {
        if (src === "function") { return "kw-function"; }
        if (src === "return") { return "kw-return"; }
        if (src === "let") { return "kw-let"; }
        return "identifier";
    }
    if (/^"[^"]*"$/.test(src)) { return "string"; }
    if (/^\/\/.*$/.test(src)) { return "comment"; }
    let op = /^(===|!==|==|!=|\+|-)$/.exec(src);
    if (op) {
        if (op[1] === "===") { return "strict-eq"; }
        return "operator";
    }
    return "unknown";
}
"#,
        },
        LibraryWorkload {
            name: "fast-xml-parser",
            entry: "parse",
            arity: 1,
            source: r#"
function parse(xml) {
    let m = /^<([a-z]+)>(.*)<\/\1>$/.exec(xml);
    if (m) {
        if (m[1] === "root") {
            let inner = /^<(item|value)>([a-z0-9]*)<\/\2>$/.exec(m[2]);
            if (inner) {
                if (inner[2] === "") { return "empty-item"; }
                return "nested";
            }
            return "root-with-text";
        }
        return "element";
    }
    if (/^<([a-z]+)\s*\/>$/.test(xml)) { return "self-closing"; }
    if (/^<!--/.test(xml)) { return "comment"; }
    return "text";
}
"#,
        },
        LibraryWorkload {
            name: "js-yaml",
            entry: "parseLine",
            arity: 1,
            source: r#"
function parseLine(line) {
    if (/^\s*#/.test(line)) { return "comment"; }
    if (/^---/.test(line)) { return "document-start"; }
    let kv = /^([a-z_]+):\s*(.*)$/.exec(line);
    if (kv) {
        if (/^[0-9]+$/.test(kv[2])) { return "int-value"; }
        if (/^(true|false)$/.test(kv[2])) { return "bool-value"; }
        if (kv[2] === "") { return "empty-value"; }
        return "string-value";
    }
    if (/^\s*-\s/.test(line)) { return "sequence-item"; }
    return "plain";
}
"#,
        },
        LibraryWorkload {
            name: "minimist",
            entry: "parseArg",
            arity: 1,
            source: r#"
function parseArg(arg) {
    let long = /^--([a-z]+)=(.*)$/.exec(arg);
    if (long) {
        if (long[1] === "timeout") {
            if (/^[0-9]+$/.test(long[2])) { return "timeout-num"; }
            return "timeout-bad";
        }
        return "long-with-value";
    }
    if (/^--no-([a-z]+)$/.test(arg)) { return "negated"; }
    if (/^--[a-z]+$/.test(arg)) { return "long-flag"; }
    if (/^-[a-z]+$/.test(arg)) { return "short-flags"; }
    return "positional";
}
"#,
        },
        LibraryWorkload {
            name: "moment",
            entry: "parseDate",
            arity: 1,
            source: r#"
function parseDate(s) {
    let iso = /^(\d{4})-(\d{2})-(\d{2})$/.exec(s);
    if (iso) {
        if (iso[2] === "00") { return "bad-month"; }
        return "iso-date";
    }
    let time = /^(\d{2}):(\d{2})(:(\d{2}))?$/.exec(s);
    if (time) {
        if (time[4]) { return "time-with-seconds"; }
        return "time";
    }
    if (/^\d{4}$/.test(s)) { return "year"; }
    if (/^[a-z]+ \d{1,2}$/i.test(s)) { return "month-day"; }
    return "invalid";
}
"#,
        },
        LibraryWorkload {
            name: "query-string",
            entry: "parsePair",
            arity: 1,
            source: r#"
function parsePair(pair) {
    let kv = /^([a-z0-9]+)=([^&]*)$/.exec(pair);
    if (kv) {
        if (kv[1] === "q") {
            if (kv[2] === "") { return "empty-query"; }
            return "query";
        }
        if (/^[0-9]+$/.test(kv[2])) { return "numeric-param"; }
        return "param";
    }
    if (/^[a-z0-9]+$/.test(pair)) { return "flag"; }
    if (/^#/.test(pair)) { return "fragment"; }
    return "malformed";
}
"#,
        },
        LibraryWorkload {
            name: "semver",
            entry: "parseVersion",
            arity: 1,
            source: r#"
function parseVersion(v) {
    let m = /^v?(\d+)\.(\d+)\.(\d+)(-([a-z0-9.]+))?$/.exec(v);
    if (m) {
        if (m[5]) {
            if (/^(alpha|beta|rc)/.test(m[5])) { return "prerelease"; }
            return "tagged";
        }
        if (m[1] === "0") { return "unstable"; }
        return "release";
    }
    let range = /^([\^~])(\d+)\.(\d+)\.(\d+)$/.exec(v);
    if (range) {
        if (range[1] === "^") { return "caret-range"; }
        return "tilde-range";
    }
    if (/^(\d+)(\.(x|\d+))?$/.test(v)) { return "partial"; }
    return "invalid";
}
"#,
        },
        LibraryWorkload {
            name: "url-parse",
            entry: "parseUrl",
            arity: 1,
            source: r#"
function parseUrl(url) {
    let m = /^([a-z]+):\/\/([a-z0-9.-]+)(:(\d+))?(\/.*)?$/.exec(url);
    if (m) {
        if (m[1] === "https") {
            if (m[4]) { return "https-with-port"; }
            return "https";
        }
        if (m[1] === "http") { return "http"; }
        return "other-scheme";
    }
    if (/^\/\//.test(url)) { return "protocol-relative"; }
    if (/^\//.test(url)) { return "absolute-path"; }
    if (/^[a-z0-9.-]+$/.test(url)) { return "bare-host"; }
    return "relative";
}
"#,
        },
        LibraryWorkload {
            name: "validator",
            entry: "classify",
            arity: 1,
            source: r#"
function classify(s) {
    if (/^[a-z0-9._%-]+@[a-z0-9.-]+\.[a-z]{2,}$/.test(s)) { return "email"; }
    if (/^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$/.test(s)) {
        return "uuid";
    }
    if (/^-?[0-9]+$/.test(s)) { return "int"; }
    if (/^-?[0-9]*\.[0-9]+$/.test(s)) { return "float"; }
    if (/^(true|false)$/.test(s)) { return "boolean"; }
    if (/^[A-Za-z]+$/.test(s)) { return "alpha"; }
    if (/^[A-Za-z0-9]+$/.test(s)) { return "alphanumeric"; }
    return "unknown";
}
"#,
        },
        LibraryWorkload {
            name: "xml",
            entry: "buildTag",
            arity: 2,
            source: r#"
function buildTag(name, content) {
    if (!/^[a-z][a-z0-9]*$/.test(name)) { return "bad-name"; }
    if (/[<>&]/.test(content)) { return "needs-escape"; }
    if (content === "") { return "<" + name + "/>"; }
    let tag = "<" + name + ">" + content + "</" + name + ">";
    if (/^<(\w+)>[0-9]+<\/\1>$/.test(tag)) { return "numeric-element"; }
    return tag;
}
"#,
        },
        LibraryWorkload {
            name: "yn",
            entry: "yn",
            arity: 1,
            source: r#"
function yn(input) {
    if (/^(y|yes|true|1)$/i.test(input)) { return "yes"; }
    if (/^(n|no|false|0)$/i.test(input)) { return "no"; }
    if (/^\s+$/.test(input)) { return "blank"; }
    if (input === "") { return "empty"; }
    return "default";
}
"#,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_workloads() {
        assert_eq!(library_workloads().len(), 11);
    }

    #[test]
    fn names_match_table6() {
        let names: Vec<&str> = library_workloads().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "babel-eslint",
                "fast-xml-parser",
                "js-yaml",
                "minimist",
                "moment",
                "query-string",
                "semver",
                "url-parse",
                "validator",
                "xml",
                "yn",
            ]
        );
    }
}

//! Generator of DSE-able mini-JS packages for the Table 7 breakdown.
//!
//! The paper executes 1,131 NPM packages that apply at least one regex
//! to a symbolic string (§7.3). This module generates packages of that
//! shape: small string-processing functions whose control flow is
//! guarded by regexes drawn from feature classes (plain, captures,
//! capture-comparison, backreference, precedence-sensitive), so the four
//! support levels of Table 7 separate observably.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// One generated DSE package.
#[derive(Debug, Clone)]
pub struct DseProgram {
    /// Package name.
    pub name: String,
    /// Mini-JS source.
    pub source: String,
    /// Entry function name.
    pub entry: String,
    /// Number of symbolic string arguments.
    pub arity: usize,
    /// Which feature class dominates the program (for analysis).
    pub class: ProgramClass,
}

/// Regex feature classes exercised by generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramClass {
    /// Only classical regexes — `+ Modeling RegEx` suffices.
    Plain,
    /// Branches on capture values — needs `+ Captures`.
    Captures,
    /// Capture assignment depends on greediness — needs `+ Refinement`.
    Precedence,
    /// Contains backreferences.
    Backrefs,
}

/// Templates per class. `{N}` is replaced by the program index.
const PLAIN_TEMPLATES: &[&str] = &[
    r#"
function f{N}(s) {
    if (/^[0-9]+$/.test(s)) { return "num"; }
    if (/^[a-z]+$/.test(s)) { return "word"; }
    return "other";
}
"#,
    r#"
function f{N}(s) {
    if (/^go+d$/.test(s)) { return "good"; }
    if (/^ba+d$/.test(s)) { return "bad"; }
    return "meh";
}
"#,
    r#"
function f{N}(s) {
    if (/^\s*$/.test(s)) { return "blank"; }
    if (/^#[0-9a-f]{3}$/.test(s)) { return "color"; }
    return "plain";
}
"#,
];

const CAPTURE_TEMPLATES: &[&str] = &[
    r#"
function f{N}(s) {
    let m = /^([a-z]+)=([0-9]+)$/.exec(s);
    if (m) {
        if (m[1] === "port") { return "port"; }
        if (m[2] === "0") { return "zero"; }
        return "pair";
    }
    return "none";
}
"#,
    r#"
function f{N}(s) {
    let m = /^<([a-z]+)>$/.exec(s);
    if (m) {
        if (m[1] === "div") { return "div"; }
        return "tag";
    }
    return "text";
}
"#,
    r#"
function f{N}(s) {
    let m = /^(\d+)\.(\d+)$/.exec(s);
    if (m) {
        if (m[1] === "1") { return "major-one"; }
        return "version";
    }
    return "invalid";
}
"#,
];

const PRECEDENCE_TEMPLATES: &[&str] = &[
    r#"
function f{N}(s) {
    let m = /^(a*)(a*)$/.exec(s);
    if (m) {
        if (m[2] === "") {
            if (m[1] === "aa") { return "greedy-two"; }
            return "greedy";
        }
        return "impossible";
    }
    return "none";
}
"#,
    r#"
function f{N}(s) {
    let m = /^a*(a)?$/.exec(s);
    if (m) {
        if (m[1] === "a") { return "captured"; }
        return "star-took-all";
    }
    return "none";
}
"#,
];

const BACKREF_TEMPLATES: &[&str] = &[
    r#"
function f{N}(s) {
    if (/^(ab|c)\1$/.test(s)) { return "doubled"; }
    return "plain";
}
"#,
    r#"
function f{N}(s) {
    let m = /^<(\w+)>([0-9]*)<\/\1>$/.exec(s);
    if (m) {
        if (m[1] === "timeout") { return m[2]; }
        return "tag";
    }
    return "none";
}
"#,
];

/// Generates `n` DSE packages with a deterministic class mix
/// (60% plain, 25% captures, 10% precedence, 5% backrefs — echoing the
/// Table 7 finding that modeling helps most packages while refinement
/// matters for a smaller set).
pub fn generate_dse_programs(n: usize, seed: u64) -> Vec<DseProgram> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let roll = rng.random::<f64>();
            let (class, template) = if roll < 0.60 {
                (
                    ProgramClass::Plain,
                    *PLAIN_TEMPLATES.choose(&mut rng).expect("nonempty"),
                )
            } else if roll < 0.85 {
                (
                    ProgramClass::Captures,
                    *CAPTURE_TEMPLATES.choose(&mut rng).expect("nonempty"),
                )
            } else if roll < 0.95 {
                (
                    ProgramClass::Precedence,
                    *PRECEDENCE_TEMPLATES.choose(&mut rng).expect("nonempty"),
                )
            } else {
                (
                    ProgramClass::Backrefs,
                    *BACKREF_TEMPLATES.choose(&mut rng).expect("nonempty"),
                )
            };
            DseProgram {
                name: format!("dse-pkg-{i:04}"),
                source: template.replace("{N}", &i.to_string()),
                entry: format!("f{i}"),
                arity: 1,
                class,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate_dse_programs(50, 1);
        let b = generate_dse_programs(50, 1);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.class, y.class);
        }
    }

    #[test]
    fn class_mix_is_plausible() {
        let programs = generate_dse_programs(400, 9);
        let plain = programs
            .iter()
            .filter(|p| p.class == ProgramClass::Plain)
            .count();
        let backrefs = programs
            .iter()
            .filter(|p| p.class == ProgramClass::Backrefs)
            .count();
        assert!(plain > programs.len() / 2);
        assert!(backrefs < programs.len() / 10);
    }

    #[test]
    fn entries_match_sources() {
        for p in generate_dse_programs(20, 2) {
            assert!(p.source.contains(&format!("function {}", p.entry)));
        }
    }
}

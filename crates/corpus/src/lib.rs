//! Synthetic workloads for the evaluation reproduction.
//!
//! Three generators:
//!
//! * [`gen`] — an NPM-style package corpus calibrated to the paper's
//!   Table 4/5 feature frequencies (the survey substrate);
//! * [`libs`] — the eleven Table 6 library workloads, mini-JS programs
//!   modeled after the named NPM packages;
//! * [`dse_programs`] — the Table 7 population: packages that apply at
//!   least one regex to a symbolic string, spanning the feature classes
//!   that separate the four support levels.
//!
//! Everything is deterministic given a seed, so table regeneration is
//! reproducible.

pub mod dse_programs;
pub mod gen;
pub mod libs;

pub use dse_programs::{generate_dse_programs, DseProgram, ProgramClass};
pub use gen::{generate_corpus, CorpusProfile};
pub use libs::{library_workloads, LibraryWorkload};

//! Synthetic NPM-style corpus generation.
//!
//! The paper surveys 415,487 real NPM packages (§7.1). That corpus is
//! unobtainable offline, so this module generates a deterministic
//! synthetic corpus whose *regex feature mix* is calibrated to the
//! frequencies the paper reports in Tables 4 and 5: ~35% of packages
//! contain a regex, ~20% a capture group, ~4% a backreference, ~0.1% a
//! quantified backreference; repeated inclusion of the same popular
//! expressions drives the total/unique split.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use survey::Package;

/// Paper-calibrated package-level probabilities (Table 4).
#[derive(Debug, Clone)]
pub struct CorpusProfile {
    /// Fraction of packages with source files (91.9% in the paper).
    pub with_sources: f64,
    /// Fraction with at least one regex (34.9%).
    pub with_regex: f64,
    /// Among regex packages: fraction with captures (20.5/34.9).
    pub captures_given_regex: f64,
    /// Among capture packages: fraction with backreferences (3.8/20.5).
    pub backrefs_given_captures: f64,
    /// Among backref packages: fraction with quantified backreferences
    /// (0.1/3.8).
    pub quantified_given_backrefs: f64,
    /// Mean regexes per regex-using package (9.5M / 145k ≈ 65 in the
    /// paper; scaled down for tractability while keeping the
    /// total≫unique skew).
    pub regexes_per_package: usize,
}

impl Default for CorpusProfile {
    fn default() -> CorpusProfile {
        CorpusProfile {
            with_sources: 0.919,
            with_regex: 0.349,
            captures_given_regex: 0.587,      // 20.5% / 34.9%
            backrefs_given_captures: 0.187,   // 3.8% / 20.5%
            quantified_given_backrefs: 0.032, // 0.12% / 3.8%
            regexes_per_package: 12,
        }
    }
}

/// Popular "plain" regexes (the repeated-inclusion pool; mirrors common
/// StackOverflow-style patterns the paper observes being copy-pasted).
const COMMON_PLAIN: &[&str] = &[
    "/^\\s+|\\s+$/g",
    "/[^a-z0-9]/gi",
    "/^[0-9]+$/",
    "/\\s+/",
    "/^#?(?:[a-f0-9]{6}|[a-f0-9]{3})$/",
    "/[A-Z]/g",
    "/^-?[0-9]+(?:\\.[0-9]+)?$/",
    "/\\.js$/",
    "/^\\//",
    "/x?y{1,3}z/",
    "/foo|bar|baz/m",
    "/\\bword\\b/",
    "/(?=ok)ok[a-z]*/",
    "/a+b*c?/y",
    "/\\u0041[\\x41]/u",
];

/// Popular capture-group regexes.
const COMMON_CAPTURES: &[&str] = &[
    "/^([a-z]+):\\/\\/([^/]+)/",
    "/(\\d{4})-(\\d{2})-(\\d{2})/",
    "/([a-z]+)=([^&]*)/g",
    "/^v?(\\d+)\\.(\\d+)\\.(\\d+)$/",
    "/<([a-z][a-z0-9]*)[^>]*>/i",
    "/(\\w+)@(\\w+)\\.([a-z]{2,6})/",
    "/^(.*?):(\\d+)$/m",
    "/(?:(a)|(b))+/",
];

/// Backreference regexes (non-quantified).
const COMMON_BACKREFS: &[&str] = &[
    "/(['\"])(.*?)\\1/",
    "/<(\\w+)>.*?<\\/\\1>/",
    "/\\b(\\w+)\\s+\\1\\b/",
    "/^(a+)b\\1$/",
];

/// Quantified-backreference regexes (the rare, tricky class of §4.3).
const COMMON_QUANTIFIED_BACKREFS: &[&str] = &["/((a|b)\\2)+/", "/(?:(\\w)\\1)+/", "/((x+)\\2)*y/"];

/// Generates a deterministic corpus of `n` packages.
///
/// # Examples
///
/// ```
/// use corpus::gen::{generate_corpus, CorpusProfile};
///
/// let packages = generate_corpus(100, &CorpusProfile::default(), 42);
/// assert_eq!(packages.len(), 100);
/// // Determinism: same seed, same corpus.
/// let again = generate_corpus(100, &CorpusProfile::default(), 42);
/// assert_eq!(packages[7].sources, again[7].sources);
/// ```
pub fn generate_corpus(n: usize, profile: &CorpusProfile, seed: u64) -> Vec<Package> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| generate_package(i, profile, &mut rng))
        .collect()
}

fn generate_package(index: usize, profile: &CorpusProfile, rng: &mut StdRng) -> Package {
    let name = format!("pkg-{index:06}");
    if rng.random::<f64>() >= profile.with_sources {
        return Package {
            name,
            sources: Vec::new(),
        };
    }
    let mut source = String::from("'use strict';\n");
    let has_regex = rng.random::<f64>() < profile.with_regex / profile.with_sources;
    if has_regex {
        let n_regexes = 1 + rng.random_range(0..profile.regexes_per_package * 2);
        let has_captures = rng.random::<f64>() < profile.captures_given_regex;
        let has_backrefs = has_captures && rng.random::<f64>() < profile.backrefs_given_captures;
        let has_quantified =
            has_backrefs && rng.random::<f64>() < profile.quantified_given_backrefs;
        for k in 0..n_regexes {
            let literal = if has_quantified && k == 0 {
                COMMON_QUANTIFIED_BACKREFS.choose(rng).expect("nonempty")
            } else if has_backrefs && k <= 1 {
                COMMON_BACKREFS.choose(rng).expect("nonempty")
            } else if has_captures && k % 3 == 0 {
                COMMON_CAPTURES.choose(rng).expect("nonempty")
            } else {
                COMMON_PLAIN.choose(rng).expect("nonempty")
            };
            source.push_str(&format!(
                "exports.check{k} = function (s) {{ return {literal}.test(s); }};\n"
            ));
        }
    } else {
        source.push_str("exports.id = function (x) { return x; };\n");
    }
    Package {
        name,
        sources: vec![source],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use survey::survey_packages;

    #[test]
    fn corpus_matches_paper_shape() {
        let packages = generate_corpus(2000, &CorpusProfile::default(), 7);
        let s = survey_packages(&packages);
        let pct = |n: usize| 100.0 * n as f64 / s.packages.packages as f64;
        // Within a few points of Table 4's 34.9 / 20.5 / 3.8.
        assert!((25.0..45.0).contains(&pct(s.packages.with_regex)));
        assert!((12.0..30.0).contains(&pct(s.packages.with_captures)));
        assert!((1.0..9.0).contains(&pct(s.packages.with_backrefs)));
        assert!(pct(s.packages.with_quantified_backrefs) < 1.0);
    }

    #[test]
    fn total_exceeds_unique() {
        let packages = generate_corpus(500, &CorpusProfile::default(), 3);
        let s = survey_packages(&packages);
        assert!(s.features.total > s.features.unique);
    }

    #[test]
    fn all_pool_regexes_parse() {
        for literal in COMMON_PLAIN
            .iter()
            .chain(COMMON_CAPTURES)
            .chain(COMMON_BACKREFS)
            .chain(COMMON_QUANTIFIED_BACKREFS)
        {
            regex_syntax_es6::Regex::parse_literal(literal)
                .unwrap_or_else(|e| panic!("pool regex {literal} must parse: {e}"));
        }
    }
}

//! Static regex-usage survey (§7.1 of the paper, Tables 4 and 5).
//!
//! A lightweight static analysis that parses JavaScript-like source
//! files, extracts regex literals (like the paper, `new RegExp(...)`
//! construction is not detected — the numbers are a lower bound), and
//! aggregates feature statistics per package and per unique expression.

use std::collections::{BTreeMap, HashSet};

use regex_syntax_es6::features::FeatureSet;
use regex_syntax_es6::Regex;

/// One scanned package: a name plus its source files.
#[derive(Debug, Clone)]
pub struct Package {
    /// Package name.
    pub name: String,
    /// Source file contents.
    pub sources: Vec<String>,
}

/// Extracts the regex literals from one source text.
///
/// Uses the same literal/division disambiguation as the mini-JS lexer:
/// a `/` in expression position starts a regex literal. Literals that
/// fail to parse as ES6 regexes are skipped.
///
/// # Examples
///
/// ```
/// use survey::extract_regexes;
///
/// let found = extract_regexes(r#"let r = /a(b)+/g; let d = x / y;"#);
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].to_string(), "/a(b)+/g");
/// ```
pub fn extract_regexes(source: &str) -> Vec<Regex> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut expect_value = true;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(chars.len());
            continue;
        }
        if c == '"' || c == '\'' || c == '`' {
            let quote = c;
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == quote {
                    i += 1;
                    break;
                }
                i += 1;
            }
            expect_value = false;
            continue;
        }
        if c == '/' && expect_value {
            let start = i;
            i += 1;
            let mut in_class = false;
            let mut escaped = false;
            let mut terminated = false;
            while i < chars.len() {
                let rc = chars[i];
                if escaped {
                    escaped = false;
                } else {
                    match rc {
                        '\\' => escaped = true,
                        '[' => in_class = true,
                        ']' => in_class = false,
                        '/' if !in_class => {
                            terminated = true;
                            break;
                        }
                        '\n' => break,
                        _ => {}
                    }
                }
                i += 1;
            }
            if terminated {
                i += 1;
                while i < chars.len() && chars[i].is_ascii_alphabetic() {
                    i += 1;
                }
                let literal: String = chars[start..i].iter().collect();
                if let Ok(regex) = Regex::parse_literal(&literal) {
                    out.push(regex);
                }
                expect_value = false;
                continue;
            }
            // Not a regex after all; treat as division.
            i = start + 1;
            expect_value = true;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
            let start = i;
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
            {
                i += 1;
            }
            // After these keywords a `/` starts a regex, not division.
            let word: String = chars[start..i].iter().collect();
            expect_value = matches!(
                word.as_str(),
                "return"
                    | "typeof"
                    | "case"
                    | "in"
                    | "of"
                    | "new"
                    | "delete"
                    | "do"
                    | "else"
                    | "void"
                    | "instanceof"
                    | "yield"
                    | "await"
            );
            continue;
        }
        expect_value = !matches!(c, ')' | ']');
        i += 1;
    }
    out
}

/// Table 4: regex usage by package.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackageStats {
    /// Total packages scanned.
    pub packages: usize,
    /// Packages with at least one source file.
    pub with_sources: usize,
    /// Packages containing at least one regex.
    pub with_regex: usize,
    /// Packages containing a capture group.
    pub with_captures: usize,
    /// Packages containing a backreference.
    pub with_backrefs: usize,
    /// Packages containing a quantified backreference.
    pub with_quantified_backrefs: usize,
}

impl PackageStats {
    /// Table 4 rows as `(label, count, percent)`.
    pub fn rows(&self) -> Vec<(&'static str, usize, f64)> {
        let pct = |n: usize| {
            if self.packages == 0 {
                0.0
            } else {
                100.0 * n as f64 / self.packages as f64
            }
        };
        vec![
            ("Packages", self.packages, 100.0),
            (
                "... with source files",
                self.with_sources,
                pct(self.with_sources),
            ),
            (
                "... with regular expressions",
                self.with_regex,
                pct(self.with_regex),
            ),
            (
                "... with capture groups",
                self.with_captures,
                pct(self.with_captures),
            ),
            (
                "... with backreferences",
                self.with_backrefs,
                pct(self.with_backrefs),
            ),
            (
                "... with quantified backreferences",
                self.with_quantified_backrefs,
                pct(self.with_quantified_backrefs),
            ),
        ]
    }
}

/// Table 5: per-feature counts, total and unique.
#[derive(Debug, Clone, Default)]
pub struct FeatureStats {
    /// Total regexes seen.
    pub total: usize,
    /// Unique regexes (by `/source/flags` text).
    pub unique: usize,
    /// Per-feature `(total count, unique count)`.
    pub counts: BTreeMap<&'static str, (usize, usize)>,
}

impl FeatureStats {
    /// Table 5 rows: `(feature, total, total %, unique, unique %)`
    /// sorted by unique count descending (as in the paper).
    pub fn rows(&self) -> Vec<(&'static str, usize, f64, usize, f64)> {
        let mut rows: Vec<_> = self
            .counts
            .iter()
            .map(|(&name, &(total, unique))| {
                let tp = if self.total == 0 {
                    0.0
                } else {
                    100.0 * total as f64 / self.total as f64
                };
                let up = if self.unique == 0 {
                    0.0
                } else {
                    100.0 * unique as f64 / self.unique as f64
                };
                (name, total, tp, unique, up)
            })
            .collect();
        rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(b.0)));
        rows
    }
}

/// The complete survey result.
#[derive(Debug, Clone, Default)]
pub struct Survey {
    /// Table 4 data.
    pub packages: PackageStats,
    /// Table 5 data.
    pub features: FeatureStats,
}

/// Runs the survey over a corpus of packages.
pub fn survey_packages(packages: &[Package]) -> Survey {
    let mut out = Survey::default();
    out.packages.packages = packages.len();
    let mut unique: HashSet<String> = HashSet::new();

    for package in packages {
        if !package.sources.is_empty() {
            out.packages.with_sources += 1;
        }
        let mut pkg_regex = false;
        let mut pkg_caps = false;
        let mut pkg_brefs = false;
        let mut pkg_qbrefs = false;
        for source in &package.sources {
            for regex in extract_regexes(source) {
                let features = FeatureSet::of(&regex);
                pkg_regex = true;
                pkg_caps |= features.capture_groups;
                pkg_brefs |= features.backreferences;
                pkg_qbrefs |= features.quantified_backrefs;

                out.features.total += 1;
                let key = regex.to_string();
                let is_new = unique.insert(key);
                if is_new {
                    out.features.unique += 1;
                }
                for (name, present) in features.rows() {
                    let entry = out.features.counts.entry(name).or_insert((0, 0));
                    if present {
                        entry.0 += 1;
                        if is_new {
                            entry.1 += 1;
                        }
                    }
                }
            }
        }
        out.packages.with_regex += usize::from(pkg_regex);
        out.packages.with_captures += usize::from(pkg_caps);
        out.packages.with_backrefs += usize::from(pkg_brefs);
        out.packages.with_quantified_backrefs += usize::from(pkg_qbrefs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkg(name: &str, sources: &[&str]) -> Package {
        Package {
            name: name.into(),
            sources: sources.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn extraction_skips_division() {
        let found = extract_regexes("let a = x / y; let b = q / r;");
        assert!(found.is_empty());
    }

    #[test]
    fn extraction_finds_multiple() {
        let found = extract_regexes(
            r#"
            const A = /foo/;
            function f(s) { return s.match(/b(a)r/i); }
            // comment with /not-a-regex/
            const inString = "/also/not";
            "#,
        );
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn extraction_handles_class_slash() {
        let found = extract_regexes(r"let r = /a[/]b/;");
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn package_stats() {
        let packages = vec![
            pkg("plain", &["let x = 1;"]),
            pkg("regex", &["/abc/.test(s);"]),
            pkg("caps", &[r"/(a)\1/.exec(s);"]),
            pkg("quantified", &[r"/((a|b)\2)+/.test(s);"]),
            pkg("empty", &[]),
        ];
        let survey = survey_packages(&packages);
        assert_eq!(survey.packages.packages, 5);
        assert_eq!(survey.packages.with_sources, 4);
        assert_eq!(survey.packages.with_regex, 3);
        assert_eq!(survey.packages.with_captures, 2);
        assert_eq!(survey.packages.with_backrefs, 2);
        assert_eq!(survey.packages.with_quantified_backrefs, 1);
    }

    #[test]
    fn unique_vs_total() {
        let packages = vec![
            pkg("a", &["/dup/.test(s);"]),
            pkg("b", &["/dup/.test(s);", "/only/.test(s);"]),
        ];
        let survey = survey_packages(&packages);
        assert_eq!(survey.features.total, 3);
        assert_eq!(survey.features.unique, 2);
    }

    #[test]
    fn feature_rows_have_19_features() {
        let packages = vec![pkg("a", &["/a/.test(s);"])];
        let survey = survey_packages(&packages);
        assert_eq!(survey.features.counts.len(), 19);
    }

    #[test]
    fn table4_rows_percentages() {
        let packages = vec![pkg("a", &["/x/.test(s);"]), pkg("b", &["1;"])];
        let survey = survey_packages(&packages);
        let rows = survey.packages.rows();
        assert_eq!(rows[0].1, 2);
        let regex_row = rows.iter().find(|r| r.0.contains("regular")).expect("row");
        assert_eq!(regex_row.1, 1);
        assert!((regex_row.2 - 50.0).abs() < 1e-9);
    }
}

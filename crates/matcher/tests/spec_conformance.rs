//! ES262 conformance corpus for the concrete matcher: each case is a
//! (regex, flags, input, expected result) quadruple validated against
//! V8 behaviour. This is the oracle of the whole system, so its
//! conformance is tested densely.

use es6_matcher::{string_replace, string_split, RegExp};

fn exec(pattern: &str, flags: &str, input: &str) -> Option<Vec<Option<String>>> {
    RegExp::new(pattern, flags)
        .expect("pattern parses")
        .exec(input)
        .map(|m| m.captures)
}

fn groups(pattern: &str, input: &str) -> Vec<Option<String>> {
    exec(pattern, "", input).expect("should match")
}

#[test]
fn quantifier_precedence_corpus() {
    // (greedy) a* takes all; lazy takes none.
    assert_eq!(groups("(a*)(a*)", "aaa")[1].as_deref(), Some("aaa"));
    assert_eq!(groups("(a*?)(a*)", "aaa")[1].as_deref(), Some(""));
    assert_eq!(groups("(a+?)(a*)", "aaa")[1].as_deref(), Some("a"));
    // Bounded lazy stops at the minimum that allows a match.
    assert_eq!(groups("a{1,3}?b", "aaab")[0].as_deref(), Some("aaab"));
    assert_eq!(groups("(a{1,3}?)", "aaa")[1].as_deref(), Some("a"));
}

#[test]
fn alternation_order_corpus() {
    assert_eq!(groups("(a|ab)(b?)", "ab")[1].as_deref(), Some("a"));
    assert_eq!(groups("(ab|a)(b?)", "ab")[1].as_deref(), Some("ab"));
    // Leftmost position wins: at index 1 the "abc" branch matches
    // before the scan ever reaches the 'b' at index 2 (V8-verified).
    assert_eq!(
        exec("b|abc", "", "xabc").expect("match")[0].as_deref(),
        Some("abc")
    );
}

#[test]
fn capture_reset_corpus() {
    // V8: /(?:(a)|(b))+/.exec("ab") → ["ab", undefined, "b"].
    let caps = groups("(?:(a)|(b))+", "ab");
    assert_eq!(caps[1], None);
    assert_eq!(caps[2].as_deref(), Some("b"));
    // V8: /((a)|(b))*/.exec("ab") → ["ab", "b", undefined, "b"].
    let caps = groups("((a)|(b))*", "ab");
    assert_eq!(caps[1].as_deref(), Some("b"));
    assert_eq!(caps[2], None);
    assert_eq!(caps[3].as_deref(), Some("b"));
}

#[test]
fn backreference_corpus() {
    assert!(exec(r"(a)\1", "", "aa").is_some());
    assert!(exec(r"^(a)\1$", "", "ab").is_none());
    // Undefined group backreference matches empty (V8).
    assert_eq!(
        exec(r"(?:(a)|b)\1", "", "b").expect("match")[0].as_deref(),
        Some("b")
    );
    // Case-insensitive backreference.
    assert!(exec(r"^(ab)\1$", "i", "abAB").is_some());
}

#[test]
fn lookahead_corpus() {
    assert_eq!(
        exec(r"a(?=b)", "", "ab").expect("match")[0].as_deref(),
        Some("a")
    );
    assert!(exec(r"a(?!b)", "", "ab").is_none());
    assert!(exec(r"a(?!b)", "", "ac").is_some());
    // Nested lookahead with captures persisting.
    let caps = groups(r"(?=(a+))a*b", "aaab");
    assert_eq!(caps[1].as_deref(), Some("aaa"));
    // Negative lookahead leaves captures undefined.
    let caps = groups(r"(?!(x))a", "a");
    assert_eq!(caps[1], None);
}

#[test]
fn anchor_corpus() {
    assert!(exec("^$", "", "").is_some());
    assert!(exec("^$", "", "x").is_none());
    assert!(exec("^ab$", "m", "zz\nab").is_some());
    assert!(exec("^ab$", "", "zz\nab").is_none());
    // $ before \n in multiline.
    assert_eq!(
        exec("^(a+)$", "m", "aa\nbb").expect("match")[1].as_deref(),
        Some("aa")
    );
}

#[test]
fn word_boundary_corpus() {
    assert_eq!(
        exec(r"\b(\w+)\b", "", " hello ").expect("match")[1].as_deref(),
        Some("hello")
    );
    assert!(exec(r"\bcat\b", "", "concatenate").is_none());
    assert!(exec(r"\Bcat\B", "", "concatenate").is_some());
    assert!(exec(r"\bcat\b", "", "a cat").is_some());
}

#[test]
fn class_corpus() {
    assert!(exec(r"[\d]+", "", "42x").is_some());
    assert!(exec(r"[^\d]+", "", "42").is_none());
    assert!(exec(r"[a-c-e]", "", "-").is_some()); // literal dash
    assert!(exec(r"[\b]", "", "\u{8}").is_some()); // backspace in class
    assert!(exec("[]", "", "anything").is_none()); // empty class: never
    assert!(exec("[^]", "", "x").is_some()); // negated empty: any
}

#[test]
fn dot_and_flags_corpus() {
    assert!(exec("a.c", "", "abc").is_some());
    assert!(exec("a.c", "", "a\nc").is_none());
    assert!(exec("a.c", "s", "a\nc").is_some());
    assert!(exec("AbC", "i", "abc").is_some());
    assert!(exec("[a-z]+", "i", "XYZ").is_some());
}

#[test]
fn empty_repetition_termination() {
    // All of these must terminate (the spec's empty-iteration rule).
    assert!(exec("(?:)*", "", "x").is_some());
    assert!(exec("(a?)*b", "", "b").is_some());
    assert!(exec("(a*)*b", "", "aab").is_some());
    assert!(exec("(a*b*)*c", "", "c").is_some());
}

#[test]
fn replace_and_split_corpus() {
    let mut re = RegExp::new("(a)(b)", "").expect("regex");
    assert_eq!(string_replace("xaby", &mut re, "[$2$1]"), "x[ba]y");
    let re = RegExp::new("-", "").expect("regex");
    assert_eq!(string_split("a-b-c", &re, None), vec!["a", "b", "c"]);
    let re = RegExp::new("x", "").expect("regex");
    assert_eq!(string_split("abc", &re, None), vec!["abc"]);
}

#[test]
fn exec_index_and_input() {
    let mut re = RegExp::new("b+", "").expect("regex");
    let m = re.exec("aabbbcc").expect("match");
    assert_eq!(m.index, 2);
    assert_eq!(m.input, "aabbbcc");
    assert_eq!(m.matched(), "bbb");
}

#[test]
fn global_flag_iteration_protocol() {
    let mut re = RegExp::new("a", "g").expect("regex");
    let mut indices = Vec::new();
    while let Some(m) = re.exec("ababa") {
        indices.push(m.index);
    }
    assert_eq!(indices, vec![0, 2, 4]);
    assert_eq!(re.last_index(), 0);
}

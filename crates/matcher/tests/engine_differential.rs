//! Engine-vs-engine differential suite: the Pike VM and the
//! backtracking oracle must agree on *everything observable* — match
//! presence, leftmost extent, and every capture slot — for every
//! pattern the [`es6_matcher::select`] analysis routes to the fast
//! path.
//!
//! Two layers:
//!
//! 1. **Exhaustive**: seed-generated small patterns (the fuzzer's AST
//!    generator, restricted to a two-letter alphabet) crossed with
//!    *all* words of length <= 6 over `{a, b}`, compared at every
//!    start position and through the unanchored search loop.
//! 2. **Targeted**: regressions for the spec corners the Thompson
//!    compilation has to model explicitly — per-iteration capture
//!    reset, lazy/greedy precedence, alternation order, and lookahead
//!    capture retention.

use rand::rngs::StdRng;
use rand::SeedableRng;

use es6_matcher::{select, Engine, EngineKind, PikeVm, RegExp};
use regex_syntax_es6::arbitrary::{arbitrary_regex, GenConfig};
use regex_syntax_es6::parser::Regex;
use regex_syntax_es6::Flags;

/// Generous backtracker budget: at these sizes only a deliberately
/// pathological pattern could exhaust it, and such cases are skipped
/// (a starved attempt proves nothing about the word).
const BT_BUDGET: u64 = 2_000_000;

/// All words over `{a, b}` with length <= `max_len`, shortest first.
fn all_words(max_len: usize) -> Vec<Vec<char>> {
    let mut words = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for c in ['a', 'b'] {
                let mut w2 = w.clone();
                w2.push(c);
                words.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    words
}

/// Compares both engines on one (pattern, word) pair: anchored
/// `match_at` from every start position, then the unanchored search.
/// Returns the number of comparisons performed (0 if the backtracker
/// starved anywhere).
fn compare_case(regex: &Regex, word: &[char], label: &str) -> usize {
    let prog = es6_matcher::compile(&regex.ast, regex.flags)
        .unwrap_or_else(|f| panic!("{label}: expected fast path, got fallback ({})", f.reason));
    let vm = PikeVm::new(&prog);
    let bt = Engine::new(&regex.ast, regex.flags);
    let mut compared = 0;

    for start in 0..=word.len() {
        let expected = match bt.match_at_within(word, start, BT_BUDGET) {
            Ok(m) => m,
            Err(_) => return 0,
        };
        let got = vm.match_at(word, start);
        assert_eq!(
            got,
            expected,
            "{label}: match_at disagreement on {:?} at {start}",
            word.iter().collect::<String>()
        );
        compared += 1;
    }

    let expected = match bt.search_within(word, 0, BT_BUDGET) {
        Ok(m) => m,
        Err(_) => return compared,
    };
    let got = vm.search(word, 0);
    assert_eq!(
        got,
        expected,
        "{label}: search disagreement on {:?}",
        word.iter().collect::<String>()
    );
    compared + 1
}

/// Layer 1: generated patterns x all words <= 6 over {a, b}.
///
/// Backreferences are disabled in the generator (they can never take
/// the fast path); everything else — lookaheads, boundaries, lazy and
/// bounded quantifiers, classes, every flag — is in scope, and any
/// pattern the router sends to the backtracker (e.g. a bounded repeat
/// of a nullable body) is skipped with a count so a routing regression
/// that starves this suite would show up as a coverage collapse.
#[test]
fn exhaustive_small_patterns_all_words() {
    let cfg = GenConfig {
        max_depth: 3,
        max_repeat: 2,
        alphabet: vec!['a', 'b'],
        backrefs: false,
        lookaheads: true,
        boundaries: true,
    };
    let words = all_words(6);
    let mut fast = 0usize;
    let mut fallback = 0usize;
    let mut comparisons = 0usize;

    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let regex = match arbitrary_regex(&mut rng, &cfg) {
            Ok(r) => r,
            Err(e) => panic!("seed {seed}: generator produced unparsable regex: {e}"),
        };
        if select(&regex.ast, regex.flags).kind != EngineKind::PikeVm {
            fallback += 1;
            continue;
        }
        fast += 1;
        let label = format!("seed {seed} /{}/", regex.ast.to_source());
        for word in &words {
            comparisons += compare_case(&regex, word, &label);
        }
    }

    // The suite is meaningless if routing quietly sends everything to
    // the backtracker: demand a healthy fast-path majority and a real
    // comparison volume.
    assert!(
        fast > fallback * 3,
        "fast-path coverage collapsed: {fast} fast vs {fallback} fallback"
    );
    assert!(
        comparisons > 100_000,
        "too few comparisons ran: {comparisons}"
    );
}

/// Parses `pattern`, asserts it routes to the fast path, and compares
/// both engines over all words <= `max_len` over {a, b}.
fn assert_agree(pattern: &str, flags: Flags, max_len: usize) {
    let regex = Regex::new(pattern, flags).expect("targeted pattern must parse");
    assert_eq!(
        select(&regex.ast, regex.flags).kind,
        EngineKind::PikeVm,
        "/{pattern}/ must route to the Pike VM"
    );
    let label = format!("/{pattern}/");
    for word in all_words(max_len) {
        compare_case(&regex, &word, &label);
    }
}

/// Capture-reset per iteration (RepeatMatcher step 4): a loop body's
/// groups are cleared at the top of every iteration, so `(a?)*` on
/// `"aa"` ends with group 1 = the *last* iteration's (empty) match
/// exactly as the backtracker computes it.
#[test]
fn capture_reset_in_loops() {
    for pattern in ["(a?)*", "(a*)*", "(?:(a)|(b))+", "((a)|b)*", "(a?b?)*"] {
        assert_agree(pattern, Flags::default(), 6);
    }
}

/// Greedy/lazy precedence: operand order of the loop split must
/// reproduce the backtracker's exploration order bit-for-bit.
#[test]
fn lazy_and_greedy_precedence() {
    for pattern in [
        "a*?",
        "a+?",
        "a??",
        "a*?b",
        "a+?b",
        "(a|b)*?b",
        "(a*?)(a*)",
        "(a+)(a*?)",
    ] {
        assert_agree(pattern, Flags::default(), 6);
    }
}

/// Alternation is ordered choice: `a|ab` matches `"ab"` as just `"a"`.
#[test]
fn alternation_precedence() {
    for pattern in ["a|ab", "ab|a", "(a|ab)(b?)", "a|b|ab"] {
        assert_agree(pattern, Flags::default(), 6);
    }
}

/// Lookahead capture retention: groups set inside `(?=…)` survive into
/// the overall match; groups inside `(?!…)` never do.
#[test]
fn lookahead_capture_retention() {
    for pattern in [
        "(?=(ab))a",
        "(?=(a))(a)b?",
        "(?!(b))a(b)?",
        "(?=(a|b)b)(ab|a)",
        "a(?=b(a)?)b?",
    ] {
        assert_agree(pattern, Flags::default(), 5);
    }
}

/// Anchors, boundaries, and flags interacting with the prefilter and
/// class table.
#[test]
fn anchors_boundaries_and_flags() {
    assert_agree("^ab", Flags::default(), 5);
    assert_agree("ab$", Flags::default(), 5);
    assert_agree(r"\bab", Flags::default(), 5);
    assert_agree(r"a\B", Flags::default(), 5);
    let icase = Flags {
        ignore_case: true,
        ..Flags::default()
    };
    assert_agree("AB?", icase, 5);
    assert_agree("[A-B]+", icase, 5);
    let multi = Flags {
        multiline: true,
        ..Flags::default()
    };
    assert_agree("^a", multi, 4);
}

/// Bounded repeats with non-nullable bodies stay on the fast path and
/// agree; nullable-body bounded repeats must route to the backtracker.
#[test]
fn bounded_repeat_routing() {
    for pattern in ["a{2,3}", "a{2,3}?", "(ab){1,2}", "a{0,2}b"] {
        assert_agree(pattern, Flags::default(), 6);
    }
    for pattern in ["(a?){1,2}", "(a*){2,3}"] {
        let regex = Regex::new(pattern, Flags::default()).unwrap();
        assert_eq!(
            select(&regex.ast, regex.flags).kind,
            EngineKind::Backtrack,
            "/{pattern}/ (bounded repeat of nullable body) must fall back"
        );
    }
}

/// The public `RegExp` entry points route transparently: a fast-path
/// and a backreference pattern produce correct results side by side.
#[test]
fn regexp_routing_is_transparent() {
    let mut fast = RegExp::new("(a+)(b*)", "").unwrap();
    assert_eq!(fast.engine_kind(), EngineKind::PikeVm);
    let m = fast.exec("xxaabb").expect("match");
    assert_eq!(m.index, 2);
    assert_eq!(m.matched(), "aabb");
    assert_eq!(m.group(1), Some("aa"));
    assert_eq!(m.group(2), Some("bb"));

    let mut back = RegExp::new(r"(a+)\1", "").unwrap();
    assert_eq!(back.engine_kind(), EngineKind::Backtrack);
    let m = back.exec("aaaa").expect("match");
    assert_eq!(m.index, 0);
    assert_eq!(m.matched(), "aaaa");
}

//! Thompson-NFA compilation of the ES6 regex AST.
//!
//! [`compile`] lowers an [`Ast`] into a flat instruction [`Prog`] that the
//! Pike VM ([`crate::pikevm`]) simulates breadth-first in `O(n·m)`. The
//! compiler preserves the spec corners the backtracking oracle
//! implements operationally:
//!
//! - **Capture reset per quantifier iteration** (ES262 §21.2.2.5.1
//!   RepeatMatcher step 4): every loop body and every unrolled copy of a
//!   bounded repeat starts with an explicit [`Inst::Reset`] over the
//!   capture groups inside the atom.
//! - **Empty-iteration termination**: a loop over a *nullable* body is
//!   compiled in consumption-tracking mode (`Compiler::compile_tracked`):
//!   the body gets two exits, paths that consumed a character jump back
//!   to the loop head while paths that matched ε hit [`Inst::Fail`] —
//!   the spec's "an iteration beyond `min` that matches empty fails"
//!   rule, enforced structurally. As a consequence every cycle in the
//!   compiled code graph passes through a consuming instruction, so the
//!   ε-closure explored at any single position is *acyclic* and the
//!   VM's per-position dedup is a pure optimization: on a DAG, DFS with
//!   a global visited set yields the same first-reach order of
//!   consuming/accepting instructions as the backtracker's exploration.
//!   Bounded repeats `{m,n}` with `n > m` over a nullable body are the
//!   one shape still routed to the backtracker (each unrolled copy
//!   would need its own tracked continuation chain; the shape is rare).
//! - **Lookahead capture retention**: each lookahead compiles to its own
//!   code segment run as a memoized sub-VM; a positive lookahead merges
//!   the sub-match's capture slots into the thread, a negative one
//!   discards them.
//!
//! Two accelerations are baked into the program. *Char-class
//! compression* partitions the scalar-value space into equivalence
//! classes at compile time (for case-sensitive patterns, where the match
//! sets are exact ranges), so the VM tests a dense bitset instead of
//! scanning class ASTs; ignore-case patterns use a per-run memo keyed by
//! character that evaluates the same predicates as the backtracker. A
//! *literal prefilter* records a required prefix or first-character set
//! so unanchored search can skip to candidate start positions.

use regex_syntax_es6::ast::{AssertionKind, Ast};
use regex_syntax_es6::class::ClassSet;
use regex_syntax_es6::Flags;

use crate::exec::{char_eq, class_contains};

/// Why a pattern cannot take the Pike-VM fast path (see [`crate::select()`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fallback {
    /// Human-readable routing reason, stable for counters and logs.
    pub reason: &'static str,
}

/// Hard cap on compiled program size: bounded repeats unroll, and a
/// pattern like `(ab){1000,2000}` should fall back rather than produce a
/// program whose *linear* cost is worse than backtracking the original.
const MAX_PROG_LEN: usize = 40_000;

/// Sentinel for "group opened, not yet closed" in a thread's capture
/// vector. Structurally unreachable in a finished match: every path from
/// an [`Inst::Open`] to a segment's [`Inst::Match`] passes the matching
/// [`Inst::Close`].
pub const OPEN_SENTINEL: usize = usize::MAX;

/// One Pike-VM instruction. `u32` targets index [`Prog::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume one character contained in `Prog::sets[set]`.
    Char { set: u32 },
    /// Accept: the current segment matched, ending at the current position.
    Match,
    /// Fork: prefer `pref`, then `alt` (priority order = backtracker order).
    Split { pref: u32, alt: u32 },
    /// Unconditional jump.
    Jmp(u32),
    /// Record the open position of capture group `group`.
    Open { group: u32 },
    /// Record the close position of capture group `group`.
    Close { group: u32 },
    /// Clear capture groups `lo..=hi` (RepeatMatcher's per-iteration reset).
    Reset { lo: u32, hi: u32 },
    /// Dead end: the thread dies. Emitted on the ε-exit of a nullable
    /// loop body — the spec's "an iteration beyond `min` that matches
    /// empty fails" rule, enforced structurally.
    Fail,
    /// Zero-width spec assertion (`^`, `$`, `\b`, `\B`).
    Assert(AssertionKind),
    /// Run lookahead `Prog::looks[look]` as a memoized sub-VM.
    Look { look: u32 },
}

/// A consuming instruction's character set, in source terms. The VM only
/// consults these through [`Prog::set_matches_uncached`] (or the
/// compressed table), so the predicates stay byte-identical to the
/// backtracker's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchSet {
    /// A literal character (under `i`, canonical equivalence).
    Literal(char),
    /// A bracket class (negation and case folding applied at test time).
    Class(ClassSet),
    /// `.` — everything except line terminators unless `s` is set.
    Dot,
}

/// One lookahead sub-program: a code segment ending in [`Inst::Match`].
#[derive(Debug, Clone)]
pub struct LookEntry {
    /// `(?!…)` when true, `(?=…)` when false.
    pub negative: bool,
    /// Entry PC of the segment.
    pub entry: u32,
    /// Capture groups inside the lookahead (`lo..hi`, half-open; empty
    /// when `lo == hi`). Group indices of a subtree are contiguous, so a
    /// range suffices; a positive lookahead merges exactly these slots.
    pub group_lo: u32,
    /// One past the last group index inside the lookahead.
    pub group_hi: u32,
}

/// Compile-time char-class compression: the scalar-value space is cut at
/// every range boundary of every match set, producing equivalence
/// classes within which every set agrees. Membership is then one binary
/// search (char → class) plus one bit test per set.
///
/// Only built for case-sensitive patterns, where each set's match set is
/// an exact union of ranges. Under `i`, canonical equivalence makes the
/// cells non-uniform (e.g. `ſ` matches `/[S]/iu` but shares no compile
/// time range with `S`), so the VM uses a per-run character memo over
/// the shared predicates instead.
#[derive(Debug, Clone)]
pub struct ClassTable {
    /// Sorted cell boundaries; cell `i` covers `cuts[i]..cuts[i+1]`
    /// (the last cell extends to the end of the scalar space).
    cuts: Vec<u32>,
    /// Dense bitsets, `words_per_set` words per match set, bit = cell id.
    bits: Vec<u64>,
    words_per_set: usize,
}

impl ClassTable {
    fn cell_of(&self, c: char) -> usize {
        // partition_point returns the count of cuts <= c, which is >= 1
        // because cuts[0] == 0.
        self.cuts.partition_point(|&cut| cut <= c as u32) - 1
    }

    fn contains(&self, set: u32, cell: usize) -> bool {
        let word = self.bits[set as usize * self.words_per_set + cell / 64];
        word >> (cell % 64) & 1 == 1
    }
}

/// How unanchored search skips to candidate start positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prefilter {
    /// No skipping: every position is a candidate.
    None,
    /// Leading `^` without `m`: the only candidate position is 0.
    StartAnchor,
    /// The match must begin with this literal sequence (length >= 2);
    /// search scans for it memchr-style.
    Literal(Vec<char>),
    /// The first consumed character must fall in these sorted ranges.
    FirstSet(Vec<(u32, u32)>),
}

/// A compiled Thompson-NFA program.
#[derive(Debug, Clone)]
pub struct Prog {
    /// Flat code: the main segment first, then one segment per lookahead.
    pub code: Vec<Inst>,
    /// Entry PC of the main segment (always 0 today, kept explicit).
    pub start: u32,
    /// Number of capture groups (excluding the whole match).
    pub group_count: u32,
    /// The pattern's flag set (drives predicates and assertions).
    pub flags: Flags,
    /// Character sets referenced by [`Inst::Char`].
    pub sets: Vec<MatchSet>,
    /// Compressed class table (case-sensitive patterns only).
    pub classes: Option<ClassTable>,
    /// Lookahead segments referenced by [`Inst::Look`].
    pub looks: Vec<LookEntry>,
    /// Start-position skip strategy for unanchored search.
    pub prefilter: Prefilter,
}

impl Prog {
    /// Evaluates set membership through the exact predicates the
    /// backtracking engine uses (the VM's ignore-case/memo-miss path).
    pub fn set_matches_uncached(&self, set: u32, c: char) -> bool {
        match &self.sets[set as usize] {
            MatchSet::Literal(lit) => char_eq(c, *lit, self.flags),
            MatchSet::Class(class) => class_contains(class, c, self.flags),
            MatchSet::Dot => self.flags.dot_all || !regex_syntax_es6::class::is_line_terminator(c),
        }
    }

    /// Bitset row lookup helper for the VM: the cell of `c`, when the
    /// compressed table exists.
    pub fn class_cell(&self, c: char) -> Option<usize> {
        self.classes.as_ref().map(|t| t.cell_of(c))
    }

    /// Membership via the compressed table (`cell` from [`Self::class_cell`]).
    pub fn set_matches_cell(&self, set: u32, cell: usize) -> bool {
        self.classes
            .as_ref()
            .expect("set_matches_cell requires a class table")
            .contains(set, cell)
    }
}

/// Compiles `ast` under `flags`, or reports why the pattern must take
/// the backtracking fallback.
///
/// # Errors
///
/// [`Fallback`] when the pattern uses backreferences, a bounded repeat
/// `{m,n}` (`n > m`) over a nullable body, or compiles past the program
/// size cap.
pub fn compile(ast: &Ast, flags: Flags) -> Result<Prog, Fallback> {
    let mut c = Compiler {
        code: Vec::new(),
        sets: Vec::new(),
        looks: Vec::new(),
        pending_looks: Vec::new(),
    };
    c.compile_node(ast)?;
    c.emit(Inst::Match)?;
    // Lookahead segments are appended after the segment that references
    // them; nested lookaheads queue more work.
    let mut next = 0;
    while next < c.pending_looks.len() {
        let (idx, sub) = c.pending_looks[next].clone();
        next += 1;
        c.looks[idx as usize].entry = c.code.len() as u32;
        c.compile_node(&sub)?;
        c.emit(Inst::Match)?;
    }
    let classes = if flags.ignore_case {
        None
    } else {
        Some(build_class_table(&c.sets, flags))
    };
    Ok(Prog {
        start: 0,
        group_count: ast.capture_count(),
        flags,
        prefilter: build_prefilter(ast, flags),
        code: c.code,
        sets: c.sets,
        classes,
        looks: c.looks,
    })
}

struct Compiler {
    code: Vec<Inst>,
    sets: Vec<MatchSet>,
    looks: Vec<LookEntry>,
    pending_looks: Vec<(u32, Ast)>,
}

impl Compiler {
    fn emit(&mut self, inst: Inst) -> Result<u32, Fallback> {
        if self.code.len() >= MAX_PROG_LEN {
            return Err(Fallback {
                reason: "program size cap",
            });
        }
        self.code.push(inst);
        Ok(self.code.len() as u32 - 1)
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn add_set(&mut self, set: MatchSet) -> u32 {
        if let Some(at) = self.sets.iter().position(|s| *s == set) {
            return at as u32;
        }
        self.sets.push(set);
        self.sets.len() as u32 - 1
    }

    fn compile_node(&mut self, ast: &Ast) -> Result<(), Fallback> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => {
                let set = self.add_set(MatchSet::Literal(*c));
                self.emit(Inst::Char { set })?;
                Ok(())
            }
            Ast::Dot => {
                let set = self.add_set(MatchSet::Dot);
                self.emit(Inst::Char { set })?;
                Ok(())
            }
            Ast::Class(class) => {
                let set = self.add_set(MatchSet::Class(class.clone()));
                self.emit(Inst::Char { set })?;
                Ok(())
            }
            Ast::Assertion(kind) => {
                self.emit(Inst::Assert(*kind))?;
                Ok(())
            }
            Ast::Group { index, ast } => {
                self.emit(Inst::Open { group: *index })?;
                self.compile_node(ast)?;
                self.emit(Inst::Close { group: *index })?;
                Ok(())
            }
            Ast::NonCapturing(ast) => self.compile_node(ast),
            Ast::Lookahead { negative, ast } => {
                let idx = self.looks.len() as u32;
                let groups = ast.capture_indices();
                let (lo, hi) = match (groups.first(), groups.last()) {
                    (Some(&lo), Some(&hi)) => (lo, hi + 1),
                    _ => (0, 0),
                };
                self.looks.push(LookEntry {
                    negative: *negative,
                    entry: 0, // patched once the segment is emitted
                    group_lo: lo,
                    group_hi: hi,
                });
                self.pending_looks.push((idx, (**ast).clone()));
                self.emit(Inst::Look { look: idx })?;
                Ok(())
            }
            Ast::Backref(_) => Err(Fallback {
                reason: "backreference",
            }),
            Ast::Alt(items) => {
                if items.is_empty() {
                    return Ok(());
                }
                // S1: Split(B1, S2); S2: Split(B2, B3); …; the last
                // branch falls through. Every non-final branch jumps to
                // the common exit. Split preference order = source order
                // = the backtracker's exploration order.
                let mut jumps = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    if i + 1 < items.len() {
                        let sp = self.emit(Inst::Split { pref: 0, alt: 0 })?;
                        self.compile_node(item)?;
                        jumps.push(self.emit(Inst::Jmp(0))?);
                        let next = self.here();
                        self.code[sp as usize] = Inst::Split {
                            pref: sp + 1,
                            alt: next,
                        };
                    } else {
                        self.compile_node(item)?;
                    }
                }
                let exit = self.here();
                for j in jumps {
                    self.code[j as usize] = Inst::Jmp(exit);
                }
                Ok(())
            }
            Ast::Concat(items) => {
                for item in items {
                    self.compile_node(item)?;
                }
                Ok(())
            }
            Ast::Repeat {
                ast: body,
                min,
                max,
                lazy,
            } => self.compile_repeat(body, *min, *max, *lazy),
        }
    }

    /// Emits the per-iteration capture reset for a repeat body, if the
    /// body contains capture groups (RepeatMatcher step 4).
    fn emit_reset(&mut self, body: &Ast) -> Result<(), Fallback> {
        let groups = body.capture_indices();
        if let (Some(&lo), Some(&hi)) = (groups.first(), groups.last()) {
            self.emit(Inst::Reset { lo, hi })?;
        }
        Ok(())
    }

    fn compile_repeat(
        &mut self,
        body: &Ast,
        min: u32,
        max: Option<u32>,
        lazy: bool,
    ) -> Result<(), Fallback> {
        if max == Some(0) {
            // `x{0}`: matches ε, groups inside are never touched.
            return Ok(());
        }
        // Mandatory copies: iterations up to `min` may match empty (the
        // spec's empty check only fails iterations *beyond* min).
        for _ in 0..min {
            self.emit_reset(body)?;
            self.compile_node(body)?;
        }
        match max {
            None if !body.is_nullable() => {
                // L: Split(body, X); body; Jmp(L); X:
                // The body always consumes, so the loop-back edge is
                // never part of a single position's ε-closure.
                let split = self.emit(Inst::Split { pref: 0, alt: 0 })?;
                self.emit_reset(body)?;
                self.compile_node(body)?;
                self.emit(Inst::Jmp(split))?;
                let exit = self.here();
                self.patch_loop_split(split, lazy, exit);
                Ok(())
            }
            None => {
                // Nullable body: compile it tracked so an ε-iteration
                // dies at Fail and only consuming iterations loop back.
                // L: Split(iter, X); iter: Reset; tracked(body)
                //    { consumed -> Jmp(L); ε -> Fail }; X:
                let split = self.emit(Inst::Split { pref: 0, alt: 0 })?;
                self.emit_reset(body)?;
                let consumed = self.compile_tracked(body)?;
                self.emit(Inst::Fail)?;
                let exit = self.here();
                for j in consumed {
                    self.code[j as usize] = Inst::Jmp(split);
                }
                self.patch_loop_split(split, lazy, exit);
                Ok(())
            }
            Some(max) => {
                let extra = max - min;
                if extra == 0 {
                    return Ok(());
                }
                if body.is_nullable() {
                    // Each unrolled copy would need its own tracked
                    // continuation chain (quadratic); rare shape, the
                    // backtracker handles it.
                    return Err(Fallback {
                        reason: "bounded repeat of nullable body",
                    });
                }
                // Chain of optional copies, each exiting to the common X.
                let mut splits = Vec::new();
                for _ in 0..extra {
                    splits.push(self.emit(Inst::Split { pref: 0, alt: 0 })?);
                    self.emit_reset(body)?;
                    self.compile_node(body)?;
                }
                let exit = self.here();
                for sp in splits {
                    self.patch_loop_split(sp, lazy, exit);
                }
                Ok(())
            }
        }
    }

    /// Patches a loop/optional `Split` at `sp`: the body starts at
    /// `sp + 1`; greedy prefers the body, lazy prefers `exit`.
    fn patch_loop_split(&mut self, sp: u32, lazy: bool, exit: u32) {
        let body_start = sp + 1;
        self.code[sp as usize] = if lazy {
            Inst::Split {
                pref: exit,
                alt: body_start,
            }
        } else {
            Inst::Split {
                pref: body_start,
                alt: exit,
            }
        };
    }

    /// Compiles `ast` in consumption-tracking mode: the emitted code has
    /// two exits. Paths that consumed at least one character jump to the
    /// returned `Jmp` placeholders (the caller patches them); paths that
    /// matched ε fall through. Loop compilation uses this to enforce the
    /// spec's empty-iteration rule structurally, which keeps every cycle
    /// in the code graph behind a consuming instruction (so per-position
    /// ε-closures stay acyclic and thread dedup is order-preserving).
    ///
    /// Every returned placeholder is dominated by a [`Inst::Char`]
    /// traversed since the enclosing closure started, so patching one to
    /// a loop head never creates an ε-cycle.
    fn compile_tracked(&mut self, ast: &Ast) -> Result<Vec<u32>, Fallback> {
        if !ast.is_nullable() {
            // A non-nullable node always consumes: every path is a
            // "consumed" path and no tracking is needed inside.
            self.compile_node(ast)?;
            return Ok(vec![self.emit(Inst::Jmp(0))?]);
        }
        match ast {
            Ast::Empty => Ok(Vec::new()),
            Ast::Assertion(kind) => {
                self.emit(Inst::Assert(*kind))?;
                Ok(Vec::new())
            }
            // Lookaheads are zero-width in ES6: the match continues at
            // the same position, so the path stays on the ε exit.
            Ast::Lookahead { .. } => {
                self.compile_node(ast)?;
                Ok(Vec::new())
            }
            Ast::Backref(_) => Err(Fallback {
                reason: "backreference",
            }),
            Ast::NonCapturing(inner) => self.compile_tracked(inner),
            Ast::Group { index, ast: inner } => {
                // Both exits must pass Close; the consumed exit gets its
                // own Close stub so the two paths stay separate.
                self.emit(Inst::Open { group: *index })?;
                let consumed = self.compile_tracked(inner)?;
                self.emit(Inst::Close { group: *index })?;
                let eps = self.emit(Inst::Jmp(0))?;
                let stub = self.here();
                self.emit(Inst::Close { group: *index })?;
                let out = self.emit(Inst::Jmp(0))?;
                for j in consumed {
                    self.code[j as usize] = Inst::Jmp(stub);
                }
                let after = self.here();
                self.code[eps as usize] = Inst::Jmp(after);
                Ok(vec![out])
            }
            Ast::Alt(items) => {
                if items.is_empty() {
                    return Ok(Vec::new());
                }
                // Same split chain as the normal mode; each branch is
                // tracked and the ε exits of all branches converge.
                let mut consumed = Vec::new();
                let mut eps_jumps = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    if i + 1 < items.len() {
                        let sp = self.emit(Inst::Split { pref: 0, alt: 0 })?;
                        consumed.extend(self.compile_tracked(item)?);
                        eps_jumps.push(self.emit(Inst::Jmp(0))?);
                        let next = self.here();
                        self.code[sp as usize] = Inst::Split {
                            pref: sp + 1,
                            alt: next,
                        };
                    } else {
                        consumed.extend(self.compile_tracked(item)?);
                    }
                }
                let exit = self.here();
                for j in eps_jumps {
                    self.code[j as usize] = Inst::Jmp(exit);
                }
                Ok(consumed)
            }
            Ast::Concat(items) => {
                // All members are nullable (a non-nullable member would
                // make the concat non-nullable, handled above). A path
                // leaves the tracked spine at the first member that
                // consumes; its stub finishes the remaining members in
                // normal mode.
                let mut member_jumps = Vec::new();
                for item in items {
                    member_jumps.push(self.compile_tracked(item)?);
                }
                let eps = self.emit(Inst::Jmp(0))?;
                let mut consumed = Vec::new();
                for (i, jumps) in member_jumps.into_iter().enumerate() {
                    if jumps.is_empty() {
                        continue;
                    }
                    let stub = self.here();
                    for item in &items[i + 1..] {
                        self.compile_node(item)?;
                    }
                    consumed.push(self.emit(Inst::Jmp(0))?);
                    for j in jumps {
                        self.code[j as usize] = Inst::Jmp(stub);
                    }
                }
                let after = self.here();
                self.code[eps as usize] = Inst::Jmp(after);
                Ok(consumed)
            }
            Ast::Repeat {
                ast: body,
                min,
                max,
                lazy,
            } => self.compile_tracked_repeat(body, *min, *max, *lazy),
            // Literal / Dot / Class are non-nullable, handled above.
            _ => {
                self.compile_node(ast)?;
                Ok(vec![self.emit(Inst::Jmp(0))?])
            }
        }
    }

    /// Tracked compilation of a *nullable* repeat (`min == 0`, or the
    /// body is nullable — non-nullable repeats take the shortcut in
    /// [`Self::compile_tracked`]).
    fn compile_tracked_repeat(
        &mut self,
        body: &Ast,
        min: u32,
        max: Option<u32>,
        lazy: bool,
    ) -> Result<Vec<u32>, Fallback> {
        if max == Some(0) {
            return Ok(Vec::new());
        }
        if !body.is_nullable() {
            // min == 0 here: the repeat is ε (tracked fallthrough) or a
            // `{1,max}` repeat, which always consumes.
            let sp = self.emit(Inst::Split { pref: 0, alt: 0 })?;
            self.compile_repeat(body, 1, max, lazy)?;
            let out = self.emit(Inst::Jmp(0))?;
            let exit = self.here();
            self.patch_loop_split(sp, lazy, exit);
            return Ok(vec![out]);
        }
        if max.is_some_and(|m| m > min) {
            return Err(Fallback {
                reason: "bounded repeat of nullable body",
            });
        }
        // Mandatory copies may match ε (the empty-iteration rule only
        // applies beyond `min`); a copy that consumes finishes the
        // remaining copies — and the loop, when unbounded — in normal
        // mode via its stub.
        let mut copy_jumps = Vec::new();
        for _ in 0..min {
            self.emit_reset(body)?;
            copy_jumps.push(self.compile_tracked(body)?);
        }
        if max.is_none() {
            // The still-empty loop: a consuming iteration continues as a
            // plain (normal-mode) star; an ε iteration fails.
            let sp = self.emit(Inst::Split { pref: 0, alt: 0 })?;
            self.emit_reset(body)?;
            let t = self.compile_tracked(body)?;
            self.emit(Inst::Fail)?;
            let stub = self.here();
            self.compile_repeat(body, 0, None, lazy)?;
            copy_jumps.push(vec![self.emit(Inst::Jmp(0))?]);
            for j in t {
                self.code[j as usize] = Inst::Jmp(stub);
            }
            let exit = self.here();
            self.patch_loop_split(sp, lazy, exit);
        }
        let eps = self.emit(Inst::Jmp(0))?;
        let mut consumed = Vec::new();
        let copies = copy_jumps.len();
        for (i, jumps) in copy_jumps.into_iter().enumerate() {
            if jumps.is_empty() {
                continue;
            }
            if max.is_none() && i + 1 == copies {
                // The loop stub above already finished the repeat.
                consumed.extend(jumps);
                continue;
            }
            let stub = self.here();
            let done = i as u32 + 1;
            self.compile_repeat(body, min - done, max.map(|m| m - done), lazy)?;
            consumed.push(self.emit(Inst::Jmp(0))?);
            for j in jumps {
                self.code[j as usize] = Inst::Jmp(stub);
            }
        }
        let after = self.here();
        self.code[eps as usize] = Inst::Jmp(after);
        Ok(consumed)
    }
}

/// Exact match ranges for a set — only meaningful without `i`, where
/// membership is pure range containment.
fn exact_ranges(set: &MatchSet, flags: Flags) -> Vec<(u32, u32)> {
    match set {
        MatchSet::Literal(c) => vec![(*c as u32, *c as u32)],
        MatchSet::Class(class) => class.ranges(),
        MatchSet::Dot => {
            if flags.dot_all {
                vec![(0, regex_syntax_es6::class::MAX_CHAR)]
            } else {
                // Complement of the LineTerminator set (§11.3).
                vec![
                    (0, 0x09),
                    (0x0B, 0x0C),
                    (0x0E, 0x2027),
                    (0x202A, regex_syntax_es6::class::MAX_CHAR),
                ]
            }
        }
    }
}

fn build_class_table(sets: &[MatchSet], flags: Flags) -> ClassTable {
    let mut cuts = vec![0u32];
    let all_ranges: Vec<Vec<(u32, u32)>> = sets.iter().map(|s| exact_ranges(s, flags)).collect();
    for ranges in &all_ranges {
        for &(lo, hi) in ranges {
            cuts.push(lo);
            if hi < regex_syntax_es6::class::MAX_CHAR {
                cuts.push(hi + 1);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    let cells = cuts.len();
    let words_per_set = cells.div_ceil(64);
    let mut bits = vec![0u64; sets.len() * words_per_set];
    for (set, ranges) in all_ranges.iter().enumerate() {
        for &(lo, hi) in ranges {
            // Boundaries include lo and hi+1, so the covered cells are
            // exactly cell(lo)..=cell(hi).
            let first = cuts.partition_point(|&cut| cut <= lo) - 1;
            let last = cuts.partition_point(|&cut| cut <= hi) - 1;
            for cell in first..=last {
                bits[set * words_per_set + cell / 64] |= 1 << (cell % 64);
            }
        }
    }
    ClassTable {
        cuts,
        bits,
        words_per_set,
    }
}

/// Derives the unanchored-search prefilter from the AST.
///
/// Soundness argument: a prefilter may only *skip* positions where no
/// match can start. A non-nullable pattern matching at `p` consumes its
/// first character at `p`, so `input[p]` must lie in the first-character
/// set; when the pattern opens with mandatory literals, `input[p..]`
/// must start with them. Ignore-case patterns skip prefiltering (the
/// canonical-equivalence closure is not a compile-time range set).
fn build_prefilter(ast: &Ast, flags: Flags) -> Prefilter {
    if flags.ignore_case || ast.is_nullable() {
        return Prefilter::None;
    }
    if !flags.multiline && leads_with_start_anchor(ast) {
        return Prefilter::StartAnchor;
    }
    let mut prefix = Vec::new();
    collect_literal_prefix(ast, &mut prefix);
    if prefix.len() >= 2 {
        return Prefilter::Literal(prefix);
    }
    match first_ranges(ast) {
        Some(ranges) if !ranges.is_empty() => Prefilter::FirstSet(normalize(ranges)),
        _ => Prefilter::None,
    }
}

fn leads_with_start_anchor(ast: &Ast) -> bool {
    match ast {
        Ast::Assertion(AssertionKind::StartAnchor) => true,
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => leads_with_start_anchor(ast),
        Ast::Concat(items) => items.first().is_some_and(leads_with_start_anchor),
        _ => false,
    }
}

/// Collects the longest mandatory literal prefix; returns whether the
/// node was consumed entirely as literals (so a concat may continue).
fn collect_literal_prefix(ast: &Ast, out: &mut Vec<char>) -> bool {
    match ast {
        Ast::Literal(c) => {
            out.push(*c);
            true
        }
        Ast::Empty | Ast::Assertion(_) => true,
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => collect_literal_prefix(ast, out),
        Ast::Concat(items) => items.iter().all(|item| collect_literal_prefix(item, out)),
        _ => false,
    }
}

/// The set of possible first consumed characters, or `None` when the
/// analysis cannot bound it. Zero-width nodes contribute an empty set.
fn first_ranges(ast: &Ast) -> Option<Vec<(u32, u32)>> {
    match ast {
        Ast::Empty | Ast::Assertion(_) | Ast::Lookahead { .. } => Some(Vec::new()),
        Ast::Literal(c) => Some(vec![(*c as u32, *c as u32)]),
        Ast::Dot => Some(exact_ranges(&MatchSet::Dot, Flags::empty())),
        Ast::Class(class) => Some(class.ranges()),
        Ast::Backref(_) => None,
        Ast::Group { ast, .. } | Ast::NonCapturing(ast) => first_ranges(ast),
        Ast::Repeat { ast, .. } => first_ranges(ast),
        Ast::Alt(items) => {
            let mut acc = Vec::new();
            for item in items {
                acc.extend(first_ranges(item)?);
            }
            Some(acc)
        }
        Ast::Concat(items) => {
            let mut acc = Vec::new();
            for item in items {
                acc.extend(first_ranges(item)?);
                if !item.is_nullable() {
                    return Some(acc);
                }
            }
            Some(acc)
        }
    }
}

fn normalize(mut ranges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    ranges.sort_unstable();
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// True when `c` lies in the sorted, disjoint `ranges`.
pub fn in_ranges(ranges: &[(u32, u32)], c: char) -> bool {
    let c = c as u32;
    let at = ranges.partition_point(|&(lo, _)| lo <= c);
    at > 0 && ranges[at - 1].1 >= c
}

//! The Pike-VM fast path: breadth-first Thompson-NFA simulation with
//! capture tracking, in `O(n·m)` steps.
//!
//! All live threads advance through the input in lockstep, one position
//! at a time. Within a position the thread list is *priority ordered* —
//! list order is exactly the backtracking engine's exploration order —
//! and a per-position sparse-set dedups program counters, so at most one
//! thread (the highest-priority one) owns each `(pc, position)` pair.
//! Because the fast path never runs patterns with backreferences, a
//! thread's future behavior is independent of its capture state, which
//! makes the dedup lossless: the discarded thread's continuations either
//! exist at higher priority already or fail identically.
//!
//! When a thread reaches [`Inst::Match`], the match is recorded and all
//! *lower*-priority threads are cut; surviving higher-priority threads
//! keep running and override the record if they match later — yielding
//! exactly the backtracker's greedy/lazy/leftmost answer, captures
//! included. Unanchored search seeds one new lowest-priority thread per
//! position (skipping ahead via the compiled [`Prefilter`]) until a
//! match is recorded.
//!
//! Lookaheads run as memoized sub-VMs over their own code segments: a
//! result depends only on `(lookahead, position)` since every group
//! inside a lookahead is undefined on entry (per-iteration resets clear
//! them, and without backreferences nothing else can set them first).
//! Positive lookaheads merge the sub-match's capture slots into the
//! thread (ES6 retains them); negative lookaheads discard them.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::exec::{assertion_holds, CaptureSlot, Captures, Match, StepLimitExceeded};
use crate::prog::{in_ranges, Inst, Prefilter, Prog, OPEN_SENTINEL};

/// One VM thread: a program counter plus the capture state and match
/// start it carries. Capture vectors are shared copy-on-write.
#[derive(Clone)]
struct Thread {
    pc: u32,
    start: usize,
    caps: Rc<Vec<CaptureSlot>>,
}

/// A recorded match: `(start, end, captures)`.
type RunHit = (usize, usize, Rc<Vec<CaptureSlot>>);

/// Per-execution scratch shared across the main run and lookahead
/// sub-runs: the step budget, the lookahead memo table, and (for
/// ignore-case programs) the per-character set-membership memo.
struct RunState {
    fuel: u64,
    steps: u64,
    /// `(lookahead index, position)` → sub-match captures (or no match).
    memo: HashMap<(u32, usize), Option<Rc<Vec<CaptureSlot>>>>,
    /// Ignore-case path: char → bitmask over the program's match sets,
    /// filled lazily through the same predicates the backtracker uses.
    set_memo: HashMap<char, Vec<u64>>,
}

impl RunState {
    fn charge(&mut self) -> Result<(), StepLimitExceeded> {
        self.steps += 1;
        if self.fuel == 0 {
            return Err(StepLimitExceeded);
        }
        self.fuel -= 1;
        Ok(())
    }
}

/// The Pike VM over one compiled [`Prog`].
#[derive(Debug)]
pub struct PikeVm<'p> {
    prog: &'p Prog,
    last_steps: Cell<u64>,
}

impl<'p> PikeVm<'p> {
    /// Creates a VM over a compiled program.
    pub fn new(prog: &'p Prog) -> PikeVm<'p> {
        PikeVm {
            prog,
            last_steps: Cell::new(0),
        }
    }

    /// Instruction visits spent by the most recent call — the fast
    /// path's analogue of the backtracker's step count, used by the
    /// ReDoS bench to witness the `O(n·m)` bound.
    pub fn last_steps(&self) -> u64 {
        self.last_steps.get()
    }

    /// Anchored match at `start` (the spec's `[[Match]]`), unbudgeted.
    pub fn match_at(&self, input: &[char], start: usize) -> Option<Match> {
        self.match_at_within(input, start, u64::MAX)
            .expect("unbounded run cannot exhaust")
    }

    /// Anchored match at `start` under a step budget.
    ///
    /// # Errors
    ///
    /// [`StepLimitExceeded`] when the budget ran out — with the VM's
    /// linear bound this only happens when `step_limit` is below
    /// `O(n·m)`, unlike the backtracker where it signals blowup.
    pub fn match_at_within(
        &self,
        input: &[char],
        start: usize,
        step_limit: u64,
    ) -> Result<Option<Match>, StepLimitExceeded> {
        self.exec(input, start, true, step_limit)
    }

    /// Unanchored leftmost search from `start`, unbudgeted.
    pub fn search(&self, input: &[char], start: usize) -> Option<Match> {
        self.search_within(input, start, u64::MAX)
            .expect("unbounded run cannot exhaust")
    }

    /// Unanchored leftmost search from `start` under a step budget.
    ///
    /// # Errors
    ///
    /// [`StepLimitExceeded`] when the budget ran out before a verdict.
    pub fn search_within(
        &self,
        input: &[char],
        start: usize,
        step_limit: u64,
    ) -> Result<Option<Match>, StepLimitExceeded> {
        self.exec(input, start, false, step_limit)
    }

    fn exec(
        &self,
        input: &[char],
        start: usize,
        anchored: bool,
        step_limit: u64,
    ) -> Result<Option<Match>, StepLimitExceeded> {
        if start > input.len() {
            return Ok(None);
        }
        let mut rs = RunState {
            fuel: step_limit,
            steps: 0,
            memo: HashMap::new(),
            set_memo: HashMap::new(),
        };
        let result = self.run(&mut rs, input, start, anchored, self.prog.start);
        self.last_steps.set(rs.steps);
        let (m_start, m_end, caps) = match result? {
            Some(hit) => hit,
            None => return Ok(None),
        };
        let slots = (*caps).clone();
        debug_assert!(
            slots
                .iter()
                .all(|s| s.is_none_or(|(_, e)| e != OPEN_SENTINEL)),
            "group open without close survived to a match"
        );
        Ok(Some(Match {
            start: m_start,
            end: m_end,
            captures: Captures(slots),
        }))
    }

    /// Core simulation: runs the segment at `entry` over `input`
    /// starting at `at`. Returns the highest-priority match `(start,
    /// end, captures)`, honoring leftmost seeding when unanchored.
    ///
    /// Lists and the visited sparse-set are local so lookahead sub-runs
    /// (which re-enter `run` through `look_result`) cannot clobber the
    /// caller's closure state.
    fn run(
        &self,
        rs: &mut RunState,
        input: &[char],
        at: usize,
        anchored: bool,
        entry: u32,
    ) -> Result<Option<RunHit>, StepLimitExceeded> {
        let len = input.len();
        let mut visited = vec![0u32; self.prog.code.len()];
        let mut gen: u32 = 1;
        let mut clist: Vec<Thread> = Vec::new();
        let mut nlist: Vec<Thread> = Vec::new();
        let mut record: Option<RunHit> = None;
        let fresh: Rc<Vec<CaptureSlot>> = Rc::new(vec![None; self.prog.group_count as usize + 1]);
        let mut pos = at;

        if anchored {
            self.add_thread(
                rs,
                &mut clist,
                &mut visited,
                gen,
                entry,
                at,
                at,
                fresh.clone(),
                input,
            )?;
        }
        loop {
            if !anchored && record.is_none() && pos <= len {
                if clist.is_empty() {
                    // Nothing alive: free to skip to the next candidate
                    // start position via the prefilter.
                    match self.prefilter_skip(input, pos) {
                        Some(p) if p <= len => {
                            if p != pos {
                                pos = p;
                                gen += 1; // stale marks were for the old position
                            }
                        }
                        _ => break,
                    }
                }
                // Seed the new start as the lowest-priority thread.
                self.add_thread(
                    rs,
                    &mut clist,
                    &mut visited,
                    gen,
                    entry,
                    pos,
                    pos,
                    fresh.clone(),
                    input,
                )?;
            }
            if clist.is_empty() {
                if !anchored && record.is_none() && pos < len {
                    // The seed died instantly (e.g. a failed assertion);
                    // try the next position.
                    pos += 1;
                    gen += 1;
                    continue;
                }
                break;
            }
            // Consume step at `pos`: build the next list under a fresh
            // generation. Lists only ever hold Char and Match threads.
            gen += 1;
            let cell = if pos < len {
                self.prog.class_cell(input[pos])
            } else {
                None
            };
            let mut cut = false;
            for t in &clist {
                rs.charge()?;
                match self.prog.code[t.pc as usize] {
                    Inst::Char { set } => {
                        let hit = pos < len
                            && match cell {
                                Some(cell) => self.prog.set_matches_cell(set, cell),
                                None => self.set_match_dyn(rs, set, input[pos]),
                            };
                        if hit {
                            self.add_thread(
                                rs,
                                &mut nlist,
                                &mut visited,
                                gen,
                                t.pc + 1,
                                pos + 1,
                                t.start,
                                t.caps.clone(),
                                input,
                            )?;
                        }
                    }
                    Inst::Match => {
                        // Record and cut every lower-priority thread;
                        // survivors already in nlist outrank this match
                        // and override the record if they match later.
                        record = Some((t.start, pos, t.caps.clone()));
                        cut = true;
                    }
                    _ => unreachable!("lists hold only Char/Match threads"),
                }
                if cut {
                    break;
                }
            }
            clist.clear();
            std::mem::swap(&mut clist, &mut nlist);
            pos += 1;
        }
        Ok(record)
    }

    /// ε-closure: follows zero-width instructions from `pc` in priority
    /// (DFS pre-)order, appending reached `Char`/`Match` threads to
    /// `list`. The sparse-set ensures each PC is claimed once per
    /// position, by its highest-priority visitor.
    #[allow(clippy::too_many_arguments)]
    fn add_thread(
        &self,
        rs: &mut RunState,
        list: &mut Vec<Thread>,
        visited: &mut [u32],
        gen: u32,
        pc: u32,
        pos: usize,
        start: usize,
        caps: Rc<Vec<CaptureSlot>>,
        input: &[char],
    ) -> Result<(), StepLimitExceeded> {
        let mut stack = vec![(pc, caps)];
        while let Some((pc, caps)) = stack.pop() {
            if visited[pc as usize] == gen {
                continue;
            }
            visited[pc as usize] = gen;
            rs.charge()?;
            match &self.prog.code[pc as usize] {
                Inst::Jmp(target) => stack.push((*target, caps)),
                Inst::Split { pref, alt } => {
                    // `pref` and its whole subtree must be explored
                    // before `alt`: push `alt` first (LIFO).
                    stack.push((*alt, caps.clone()));
                    stack.push((*pref, caps));
                }
                Inst::Open { group } => {
                    let mut caps = caps;
                    Rc::make_mut(&mut caps)[*group as usize] = Some((pos, OPEN_SENTINEL));
                    stack.push((pc + 1, caps));
                }
                Inst::Close { group } => {
                    let mut caps = caps;
                    let slots = Rc::make_mut(&mut caps);
                    let open = slots[*group as usize].map_or(pos, |(s, _)| s);
                    slots[*group as usize] = Some((open, pos));
                    stack.push((pc + 1, caps));
                }
                Inst::Reset { lo, hi } => {
                    let mut caps = caps;
                    let slots = Rc::make_mut(&mut caps);
                    for g in *lo..=*hi {
                        slots[g as usize] = None;
                    }
                    stack.push((pc + 1, caps));
                }
                Inst::Assert(kind) => {
                    if assertion_holds(*kind, input, pos, self.prog.flags) {
                        stack.push((pc + 1, caps));
                    }
                }
                Inst::Look { look } => {
                    let look = *look;
                    let sub = self.look_result(rs, look, pos, input)?;
                    let entry = &self.prog.looks[look as usize];
                    if entry.negative {
                        if sub.is_none() {
                            stack.push((pc + 1, caps));
                        }
                    } else if let Some(sub) = sub {
                        // ES6 retains captures made inside a positive
                        // lookahead: merge its group slots.
                        if entry.group_lo == entry.group_hi {
                            stack.push((pc + 1, caps));
                        } else {
                            let mut caps = caps;
                            let slots = Rc::make_mut(&mut caps);
                            for g in entry.group_lo..entry.group_hi {
                                slots[g as usize] = sub[g as usize];
                            }
                            stack.push((pc + 1, caps));
                        }
                    }
                }
                // A nullable loop body's ε exit: the iteration matched
                // empty and fails (ES262 RepeatMatcher's empty check).
                Inst::Fail => {}
                Inst::Char { .. } | Inst::Match => list.push(Thread { pc, start, caps }),
            }
        }
        Ok(())
    }

    /// Runs (or recalls) lookahead `idx` at `pos`. The result is a pure
    /// function of `(idx, pos)`: groups inside a lookahead are always
    /// undefined on entry, so the sub-VM starts from fresh captures.
    fn look_result(
        &self,
        rs: &mut RunState,
        idx: u32,
        pos: usize,
        input: &[char],
    ) -> Result<Option<Rc<Vec<CaptureSlot>>>, StepLimitExceeded> {
        if let Some(cached) = rs.memo.get(&(idx, pos)) {
            return Ok(cached.clone());
        }
        let entry = self.prog.looks[idx as usize].entry;
        let result = self.run(rs, input, pos, true, entry)?;
        let caps = result.map(|(_, _, caps)| caps);
        rs.memo.insert((idx, pos), caps.clone());
        Ok(caps)
    }

    /// Set membership for ignore-case programs: a lazily filled per-run
    /// memo over the exact predicates shared with the backtracker.
    fn set_match_dyn(&self, rs: &mut RunState, set: u32, c: char) -> bool {
        let words = self.prog.sets.len().div_ceil(64);
        let prog = self.prog;
        let mask = rs.set_memo.entry(c).or_insert_with(|| {
            let mut v = vec![0u64; words];
            for i in 0..prog.sets.len() {
                if prog.set_matches_uncached(i as u32, c) {
                    v[i / 64] |= 1 << (i % 64);
                }
            }
            v
        });
        mask[set as usize / 64] >> (set % 64) & 1 == 1
    }

    /// Earliest candidate start position `>= pos`, or `None` when the
    /// prefilter proves no further match can start.
    fn prefilter_skip(&self, input: &[char], pos: usize) -> Option<usize> {
        match &self.prog.prefilter {
            Prefilter::None => Some(pos),
            Prefilter::StartAnchor => {
                if pos == 0 {
                    Some(0)
                } else {
                    None
                }
            }
            Prefilter::Literal(prefix) => {
                let first = prefix[0];
                let mut at = pos;
                while at + prefix.len() <= input.len() {
                    if input[at] == first && input[at..at + prefix.len()] == prefix[..] {
                        return Some(at);
                    }
                    at += 1;
                }
                None
            }
            Prefilter::FirstSet(ranges) => {
                (pos..input.len()).find(|&at| in_ranges(ranges, input[at]))
            }
        }
    }
}

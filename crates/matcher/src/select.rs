//! Static engine selection: which of the two match engines runs a
//! pattern.
//!
//! The analysis is conservative and purely syntactic-plus-compile-time:
//! a pattern takes the Pike-VM fast path exactly when
//! [`crate::prog::compile`] can express it faithfully. Today that
//! excludes:
//!
//! - **backreferences** — a thread's future would depend on its capture
//!   state, breaking the VM's per-position dedup (and the regular
//!   structure altogether);
//! - **bounded repeats `{m,n}` (`n > m`) over nullable bodies** — the
//!   spec's "iterations beyond `min` must not match empty" rule is
//!   compiled structurally for *looping* constructs (the ε-exit of the
//!   body is a dead end), but each unrolled optional copy would need
//!   its own tracked continuation chain, which the compiler does not
//!   build for this rare shape;
//! - patterns whose unrolled program exceeds the size cap.
//!
//! Everything else — lookaheads, word boundaries, all flag combinations,
//! classes, nested unbounded quantifiers — runs on the fast path.

use regex_syntax_es6::ast::Ast;
use regex_syntax_es6::Flags;

use crate::prog;

/// Which engine a pattern is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Linear-time Thompson simulation ([`crate::pikevm::PikeVm`]).
    PikeVm,
    /// The spec-operational backtracker ([`crate::exec::Engine`]).
    Backtrack,
}

/// A routing decision with its reason (stable strings, fit for counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The chosen engine.
    pub kind: EngineKind,
    /// `"fast path"` for the VM, otherwise the fallback cause.
    pub reason: &'static str,
}

/// Decides the engine for `ast` under `flags`.
///
/// This compiles the pattern (and discards the program); callers that
/// will also *run* the fast path should go through
/// [`crate::RegExp`], which caches the compiled program.
pub fn select(ast: &Ast, flags: Flags) -> Selection {
    match prog::compile(ast, flags) {
        Ok(_) => Selection {
            kind: EngineKind::PikeVm,
            reason: "fast path",
        },
        Err(fallback) => Selection {
            kind: EngineKind::Backtrack,
            reason: fallback.reason,
        },
    }
}

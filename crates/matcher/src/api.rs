//! The JavaScript-facing API: `RegExp` objects with `lastIndex` state and
//! the `String.prototype` methods that take regexes.
//!
//! Semantics follow ES262 §21.2.5 (`RegExp.prototype.exec`, `test`) and
//! §21.1.3 (`match`, `replace`, `search`, `split`). `RegExp` objects are
//! stateful under the `g` and `y` flags, as the paper's §2.1 example
//! shows.

use std::sync::{Arc, OnceLock};

use regex_syntax_es6::{Flags, ParseError, Regex};

use crate::exec::{Engine, Match};
use crate::pikevm::PikeVm;
use crate::prog::{self, Prog};
use crate::select::EngineKind;

/// A concrete ES6 `RegExp` object.
///
/// Matching is routed through the static engine selection of
/// [`crate::select()`]: patterns the Thompson compiler can express
/// faithfully run on the linear-time Pike VM, the rest (backreferences
/// foremost) on the spec-operational backtracker. The compiled program
/// is cached lazily on first use, so cloning a `RegExp` is cheap and
/// routing is decided once per pattern.
///
/// # Examples
///
/// The stateful sticky-flag example from §2.1 of the paper:
///
/// ```
/// use es6_matcher::RegExp;
///
/// let mut r = RegExp::from_literal("/goo+d/y")?;
/// assert!(r.test("goood"));
/// assert_eq!(r.last_index(), 5);
/// assert!(!r.test("goood"));
/// assert_eq!(r.last_index(), 0);
/// # Ok::<(), regex_syntax_es6::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegExp {
    regex: Regex,
    last_index: usize,
    /// Lazily compiled fast-path program; `Some(None)` caches a
    /// fallback decision so compilation is attempted at most once.
    compiled: OnceLock<Option<Arc<Prog>>>,
}

/// The result of a successful `exec`: the JavaScript match array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// `result[0]` — the whole matched substring, and `result[i]` — the
    /// last substring matched by capture group `i` (or `None`).
    pub captures: Vec<Option<String>>,
    /// `result.index` — character offset of the match start.
    pub index: usize,
    /// `result.input` — the subject string.
    pub input: String,
}

impl MatchResult {
    /// The whole matched substring (`result[0]`).
    pub fn matched(&self) -> &str {
        self.captures[0].as_deref().expect("group 0 always defined")
    }

    /// The capture group `i` value, if defined.
    pub fn group(&self, i: usize) -> Option<&str> {
        self.captures.get(i).and_then(|c| c.as_deref())
    }
}

impl RegExp {
    /// Creates a `RegExp` from a pattern and flags, like
    /// `new RegExp(pattern, flags)`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] for invalid patterns or flags.
    pub fn new(pattern: &str, flags: &str) -> Result<RegExp, ParseError> {
        let flags: Flags = flags.parse()?;
        Ok(RegExp {
            regex: Regex::new(pattern, flags)?,
            last_index: 0,
            compiled: OnceLock::new(),
        })
    }

    /// Creates a `RegExp` from a `/pattern/flags` literal.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] for malformed literals.
    pub fn from_literal(literal: &str) -> Result<RegExp, ParseError> {
        Ok(RegExp {
            regex: Regex::parse_literal(literal)?,
            last_index: 0,
            compiled: OnceLock::new(),
        })
    }

    /// Wraps an already-parsed [`Regex`].
    pub fn from_regex(regex: Regex) -> RegExp {
        RegExp {
            regex,
            last_index: 0,
            compiled: OnceLock::new(),
        }
    }

    /// The parsed pattern.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The flag set.
    pub fn flags(&self) -> Flags {
        self.regex.flags
    }

    /// Current `lastIndex` (in characters, as our strings are char
    /// sequences).
    pub fn last_index(&self) -> usize {
        self.last_index
    }

    /// Sets `lastIndex`, like assigning the JavaScript property.
    pub fn set_last_index(&mut self, value: usize) {
        self.last_index = value;
    }

    /// The compiled fast-path program, compiling (once) on first use;
    /// `None` when the pattern is routed to the backtracker.
    fn prog(&self) -> Option<&Arc<Prog>> {
        self.compiled
            .get_or_init(|| {
                prog::compile(&self.regex.ast, self.regex.flags)
                    .ok()
                    .map(Arc::new)
            })
            .as_ref()
    }

    /// Which engine this pattern is routed to (see [`crate::select()`]).
    pub fn engine_kind(&self) -> EngineKind {
        if self.prog().is_some() {
            EngineKind::PikeVm
        } else {
            EngineKind::Backtrack
        }
    }

    /// `RegExp.prototype.exec(input)` (§21.2.5.2).
    ///
    /// Stateful under `g`/`y`: matching starts at `lastIndex`, which is
    /// advanced past the match on success and reset to 0 on failure.
    pub fn exec(&mut self, input: &str) -> Option<MatchResult> {
        self.exec_within(input, None)
            .expect("unbounded exec cannot exhaust a step budget")
    }

    /// [`RegExp::exec`] with an optional step budget.
    ///
    /// The budget is shared across all start positions of the unanchored
    /// search, so the total work is bounded even when every position
    /// backtracks. On exhaustion `lastIndex` is left unchanged and
    /// [`StepLimitExceeded`](crate::exec::StepLimitExceeded) is returned
    /// — a starved attempt proves nothing, so it must not be read as a
    /// failed match. This is the evaluation hook the differential fuzzer
    /// drives the oracle through.
    ///
    /// Patterns on the Pike-VM fast path are decided in `O(n·m)` steps,
    /// so with ordinary budgets the error can only arise where
    /// backtracking is actually used (backreference patterns).
    ///
    /// # Errors
    ///
    /// [`crate::exec::StepLimitExceeded`] when the budget ran out.
    pub fn exec_within(
        &mut self,
        input: &str,
        step_limit: Option<u64>,
    ) -> Result<Option<MatchResult>, crate::exec::StepLimitExceeded> {
        let chars: Vec<char> = input.chars().collect();
        let stateful = self.regex.flags.is_stateful();
        let start = if stateful { self.last_index } else { 0 };
        if start > chars.len() {
            self.last_index = 0;
            return Ok(None);
        }
        let sticky = self.regex.flags.sticky;
        let found = if let Some(prog) = self.prog().cloned() {
            let vm = PikeVm::new(&prog);
            match step_limit {
                None => {
                    if sticky {
                        vm.match_at(&chars, start)
                    } else {
                        vm.search(&chars, start)
                    }
                }
                Some(limit) => {
                    if sticky {
                        vm.match_at_within(&chars, start, limit)?
                    } else {
                        vm.search_within(&chars, start, limit)?
                    }
                }
            }
        } else {
            let engine = Engine::new(&self.regex.ast, self.regex.flags);
            match step_limit {
                None => {
                    if sticky {
                        engine.match_at(&chars, start)
                    } else {
                        (start..=chars.len()).find_map(|at| engine.match_at(&chars, at))
                    }
                }
                Some(limit) => {
                    if sticky {
                        engine.match_at_within(&chars, start, limit)?
                    } else {
                        engine.search_within(&chars, start, limit)?
                    }
                }
            }
        };
        Ok(match found {
            Some(m) => {
                if stateful {
                    self.last_index = m.end;
                }
                let mut captures = Vec::with_capacity(m.captures.0.len());
                captures.push(Some(chars[m.start..m.end].iter().collect::<String>()));
                for slot in m.captures.0.iter().skip(1) {
                    captures.push(slot.map(|(s, e)| chars[s..e].iter().collect::<String>()));
                }
                Some(MatchResult {
                    captures,
                    index: m.start,
                    input: input.to_string(),
                })
            }
            None => {
                if stateful {
                    self.last_index = 0;
                }
                None
            }
        })
    }

    /// `RegExp.prototype.test(input)`: precisely
    /// `exec(input) !== undefined` (§6.1 of the paper).
    pub fn test(&mut self, input: &str) -> bool {
        self.exec(input).is_some()
    }
}

/// Engine-routed anchored matching for the `String.prototype` helpers,
/// so `replace`/`split` get the fast path too. Built once per call —
/// previously `string_replace` constructed a fresh backtracking engine
/// on every loop iteration.
enum AnchoredMatcher<'r> {
    Vm(Arc<Prog>),
    Bt(Engine<'r>),
}

impl AnchoredMatcher<'_> {
    fn for_regexp(regexp: &RegExp) -> AnchoredMatcher<'_> {
        match regexp.prog() {
            Some(prog) => AnchoredMatcher::Vm(prog.clone()),
            None => AnchoredMatcher::Bt(Engine::new(&regexp.regex().ast, regexp.flags())),
        }
    }

    fn match_at(&self, chars: &[char], at: usize) -> Option<Match> {
        match self {
            AnchoredMatcher::Vm(prog) => PikeVm::new(prog).match_at(chars, at),
            AnchoredMatcher::Bt(engine) => engine.match_at(chars, at),
        }
    }

    fn search(&self, chars: &[char], from: usize) -> Option<Match> {
        match self {
            AnchoredMatcher::Vm(prog) => PikeVm::new(prog).search(chars, from),
            AnchoredMatcher::Bt(engine) => {
                (from..=chars.len()).find_map(|at| engine.match_at(chars, at))
            }
        }
    }
}

/// `String.prototype.match(regexp)` (§21.1.3.11).
///
/// Without `g`: equivalent to `exec`. With `g`: returns all matched
/// substrings (no capture groups), advancing past empty matches.
pub fn string_match(input: &str, regexp: &mut RegExp) -> Option<Vec<String>> {
    if !regexp.flags().global {
        return regexp.exec(input).map(|m| {
            m.captures
                .iter()
                .map(|c| c.clone().unwrap_or_default())
                .collect()
        });
    }
    regexp.set_last_index(0);
    let mut out = Vec::new();
    let n_chars = input.chars().count();
    loop {
        match regexp.exec(input) {
            None => break,
            Some(m) => {
                let matched = m.matched().to_string();
                let empty = matched.is_empty();
                out.push(matched);
                if empty {
                    let next = regexp.last_index() + 1;
                    if next > n_chars {
                        break;
                    }
                    regexp.set_last_index(next);
                }
            }
        }
    }
    regexp.set_last_index(0);
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// `String.prototype.search(regexp)` (§21.1.3.15): index of the first
/// match or -1. Ignores and does not mutate `lastIndex`.
pub fn string_search(input: &str, regexp: &RegExp) -> isize {
    let mut probe = RegExp::from_regex(Regex {
        flags: Flags {
            global: false,
            sticky: false,
            ..regexp.flags()
        },
        ..regexp.regex().clone()
    });
    match probe.exec(input) {
        Some(m) => m.index as isize,
        None => -1,
    }
}

/// `String.prototype.replace(regexp, replacement)` (§21.1.3.14) with
/// `$&`, `` $` ``, `$'`, `$1`–`$99` and `$$` substitution patterns.
///
/// Replaces the first match, or all matches under the `g` flag.
pub fn string_replace(input: &str, regexp: &mut RegExp, replacement: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    let global = regexp.flags().global;
    let mut out = String::new();
    let mut cursor = 0usize;
    regexp.set_last_index(0);
    let matcher = AnchoredMatcher::for_regexp(regexp);
    loop {
        // Search from `cursor` manually so non-global regexes also
        // continue correctly on the first iteration.
        let m = if regexp.flags().sticky {
            matcher.match_at(&chars, cursor)
        } else {
            matcher.search(&chars, cursor)
        };
        let Some(m) = m else { break };
        out.extend(&chars[cursor..m.start]);
        expand_replacement(&mut out, replacement, &chars, m.start, m.end, &m.captures.0);
        let advanced = if m.end == m.start {
            // Empty match: copy one char through to avoid looping.
            if m.end < chars.len() {
                out.push(chars[m.end]);
            }
            m.end + 1
        } else {
            m.end
        };
        cursor = advanced;
        if !global || cursor > chars.len() {
            break;
        }
    }
    if cursor <= chars.len() {
        out.extend(&chars[cursor.min(chars.len())..]);
    }
    regexp.set_last_index(0);
    out
}

fn expand_replacement(
    out: &mut String,
    replacement: &str,
    chars: &[char],
    start: usize,
    end: usize,
    captures: &[Option<(usize, usize)>],
) {
    let rep: Vec<char> = replacement.chars().collect();
    let mut i = 0;
    while i < rep.len() {
        if rep[i] == '$' && i + 1 < rep.len() {
            match rep[i + 1] {
                '$' => {
                    out.push('$');
                    i += 2;
                }
                '&' => {
                    out.extend(&chars[start..end]);
                    i += 2;
                }
                '`' => {
                    out.extend(&chars[..start]);
                    i += 2;
                }
                '\'' => {
                    out.extend(&chars[end..]);
                    i += 2;
                }
                d if d.is_ascii_digit() => {
                    // Longest valid group number wins ($10 before $1).
                    let mut num = d.to_digit(10).expect("digit") as usize;
                    let mut width = 1;
                    if i + 2 < rep.len() {
                        if let Some(d2) = rep[i + 2].to_digit(10) {
                            let two = num * 10 + d2 as usize;
                            if two < captures.len() {
                                num = two;
                                width = 2;
                            }
                        }
                    }
                    if num >= 1 && num < captures.len() {
                        if let Some((s, e)) = captures[num] {
                            out.extend(&chars[s..e]);
                        }
                        i += 1 + width;
                    } else {
                        out.push('$');
                        i += 1;
                    }
                }
                _ => {
                    out.push('$');
                    i += 1;
                }
            }
        } else {
            out.push(rep[i]);
            i += 1;
        }
    }
}

/// `String.prototype.split(separator)` (§21.1.3.17) for regexp
/// separators: capture groups are spliced into the output, and empty
/// leading/trailing pieces follow the spec.
pub fn string_split(input: &str, regexp: &RegExp, limit: Option<usize>) -> Vec<String> {
    let chars: Vec<char> = input.chars().collect();
    let limit = limit.unwrap_or(usize::MAX);
    let mut out: Vec<String> = Vec::new();
    if limit == 0 {
        return out;
    }
    let matcher = AnchoredMatcher::for_regexp(regexp);
    if chars.is_empty() {
        // Spec: if the regex matches empty input, the result is [].
        if matcher.match_at(&chars, 0).is_some() {
            return out;
        }
        out.push(String::new());
        return out;
    }
    let mut piece_start = 0usize; // spec variable p
    let mut q = 0usize;
    while q < chars.len() {
        match matcher.match_at(&chars, q) {
            Some(m) if m.end != piece_start => {
                out.push(chars[piece_start..q].iter().collect());
                if out.len() == limit {
                    return out;
                }
                for slot in m.captures.0.iter().skip(1) {
                    out.push(
                        slot.map(|(s, e)| chars[s..e].iter().collect::<String>())
                            .unwrap_or_default(),
                    );
                    if out.len() == limit {
                        return out;
                    }
                }
                piece_start = m.end;
                q = piece_start.max(q + 1);
            }
            _ => q += 1,
        }
    }
    out.push(chars[piece_start..].iter().collect());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_returns_match_array() {
        // §2.2's example semantics via exec.
        let mut r = RegExp::new(r"a|((b)*c)*d", "").expect("valid");
        let m = r.exec("bbbbcbcd").expect("match");
        assert_eq!(m.captures[0].as_deref(), Some("bbbbcbcd"));
        assert_eq!(m.captures[1].as_deref(), Some("bc"));
        assert_eq!(m.captures[2].as_deref(), Some("b"));
        assert_eq!(m.index, 0);
    }

    #[test]
    fn sticky_statefulness() {
        // §2.1 example: lastIndex advances then resets.
        let mut r = RegExp::from_literal("/goo+d/y").expect("valid");
        assert!(r.test("goood"));
        assert_eq!(r.last_index(), 5);
        assert!(!r.test("goood"));
        assert_eq!(r.last_index(), 0);
    }

    #[test]
    fn global_exec_iterates_matches() {
        let mut r = RegExp::new(r"\d+", "g").expect("valid");
        let first = r.exec("a1b22c333").expect("first");
        assert_eq!(first.matched(), "1");
        let second = r.exec("a1b22c333").expect("second");
        assert_eq!(second.matched(), "22");
        let third = r.exec("a1b22c333").expect("third");
        assert_eq!(third.matched(), "333");
        assert!(r.exec("a1b22c333").is_none());
        assert_eq!(r.last_index(), 0);
    }

    #[test]
    fn non_global_exec_is_stateless() {
        let mut r = RegExp::new("a", "").expect("valid");
        let m1 = r.exec("xa").expect("m1");
        let m2 = r.exec("xa").expect("m2");
        assert_eq!(m1.index, m2.index);
    }

    #[test]
    fn string_match_global_collects_all() {
        let mut r = RegExp::new(r"\d+", "g").expect("valid");
        assert_eq!(
            string_match("a1b22c333", &mut r),
            Some(vec!["1".into(), "22".into(), "333".into()])
        );
    }

    #[test]
    fn string_match_none() {
        let mut r = RegExp::new(r"\d", "g").expect("valid");
        assert_eq!(string_match("abc", &mut r), None);
    }

    #[test]
    fn search_returns_index() {
        let r = RegExp::new("o+", "").expect("valid");
        assert_eq!(string_search("goood", &r), 1);
        assert_eq!(string_search("gd", &r), -1);
    }

    #[test]
    fn replace_first_and_global() {
        let mut r = RegExp::new("goo+d", "").expect("valid");
        assert_eq!(
            string_replace("so goood and good", &mut r, "better"),
            "so better and good"
        );
        let mut rg = RegExp::new("goo+d", "g").expect("valid");
        assert_eq!(
            string_replace("so goood and good", &mut rg, "better"),
            "so better and better"
        );
    }

    #[test]
    fn replace_with_group_substitution() {
        let mut r = RegExp::new(r"(\w+)@(\w+)", "").expect("valid");
        assert_eq!(
            string_replace("mail me: bob@example", &mut r, "$2 gets $1 ($&)"),
            "mail me: example gets bob (bob@example)"
        );
    }

    #[test]
    fn replace_dollar_escapes() {
        let mut r = RegExp::new("a", "").expect("valid");
        assert_eq!(string_replace("a", &mut r, "$$"), "$");
        assert_eq!(string_replace("xay", &mut r, "[$`|$']"), "x[x|y]y");
    }

    #[test]
    fn split_basic() {
        let r = RegExp::new(",", "").expect("valid");
        assert_eq!(string_split("a,b,c", &r, None), vec!["a", "b", "c"]);
    }

    #[test]
    fn split_with_captures() {
        // Spec: capture groups are included in the result.
        let r = RegExp::new(r"(\d)", "").expect("valid");
        assert_eq!(
            string_split("a1b2c", &r, None),
            vec!["a", "1", "b", "2", "c"]
        );
    }

    #[test]
    fn split_empty_input_matching_regex() {
        let r = RegExp::new(".?", "").expect("valid");
        assert_eq!(string_split("", &r, None), Vec::<String>::new());
    }

    #[test]
    fn split_limit() {
        let r = RegExp::new(",", "").expect("valid");
        assert_eq!(string_split("a,b,c", &r, Some(2)), vec!["a", "b"]);
    }

    #[test]
    fn exec_last_index_beyond_input() {
        let mut r = RegExp::new("a", "y").expect("valid");
        r.set_last_index(10);
        assert!(r.exec("aaa").is_none());
        assert_eq!(r.last_index(), 0);
    }

    #[test]
    fn global_flag_empty_match_progress() {
        let mut r = RegExp::new("x?", "g").expect("valid");
        // Must terminate even though every position matches empty.
        let all = string_match("abc", &mut r);
        assert!(all.is_some());
    }
}

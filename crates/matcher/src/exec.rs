//! The backtracking match engine.
//!
//! This follows the continuation-passing semantics of ES262 §21.2.2
//! (Pattern Semantics): every AST node is interpreted as a *matcher* that
//! receives the current position and capture state plus a continuation,
//! and backtracking is realized by returning `false` to the caller, who
//! then tries the next alternative. The engine reproduces the
//! specification's observable behaviour exactly:
//!
//! * greedy quantifiers try the longest iteration count first, lazy ones
//!   the shortest (matching precedence, §2.4 of the paper);
//! * capture slots inside a quantified atom are reset to undefined at the
//!   start of every iteration (RepeatMatcher step 4);
//! * an iteration of a quantifier beyond the minimum that matches the
//!   empty string fails, terminating `(a?)*`-style loops;
//! * backreferences to undefined groups match the empty string;
//! * positive lookaheads retain capture assignments, negative lookaheads
//!   discard them.

use std::cell::Cell;

use regex_syntax_es6::ast::{AssertionKind, Ast};
use regex_syntax_es6::class::is_line_terminator;
use regex_syntax_es6::Flags;

/// The step budget of a bounded match attempt ran out before the
/// attempt could be decided (see [`Engine::match_at_within`]).
///
/// With two engines this error means different things depending on the
/// route. Backtracking over adversarial patterns (`(a+)+b` and friends)
/// is exponential, so on the fallback engine a reasonable budget turns
/// this error into a *ReDoS detector*: hitting it on a few dozen input
/// characters is strong evidence of catastrophic backtracking. The Pike
/// VM fast path ([`crate::pikevm::PikeVm`]) is `O(n·m)` and only
/// reports this when the budget is below that linear bound, so fast-path
/// consumers with ordinary budgets never see it. Consumers that feed the
/// matcher *generated* patterns — the differential fuzzer foremost —
/// must bound it and treat this as "oracle unavailable", never as a
/// non-match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLimitExceeded;

impl std::fmt::Display for StepLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("matcher step budget exceeded (catastrophic backtracking, or a budget below the Pike VM's linear bound)")
    }
}

impl std::error::Error for StepLimitExceeded {}

/// A capture slot: byte-free `(start, end)` character offsets, or
/// `None` for undefined (the paper's `⊥`, distinct from an empty match).
pub type CaptureSlot = Option<(usize, usize)>;

/// Capture state during matching: slot `i` holds group `i` (slot 0 is
/// unused; the whole match is tracked by the driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captures(pub Vec<CaptureSlot>);

impl Captures {
    fn new(group_count: u32) -> Captures {
        Captures(vec![None; group_count as usize + 1])
    }
}

/// The result of a successful anchored match attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Character offset at which the match starts.
    pub start: usize,
    /// Character offset one past the end of the match.
    pub end: usize,
    /// Final capture state (slot 0 unused).
    pub captures: Captures,
}

/// The match engine for one pattern.
#[derive(Debug)]
pub struct Engine<'a> {
    ast: &'a Ast,
    flags: Flags,
    group_count: u32,
    /// Remaining steps for a bounded attempt; `None` = unbounded.
    fuel: Cell<Option<u64>>,
    /// Set when a bounded attempt ran out of fuel.
    exhausted: Cell<bool>,
}

impl<'a> Engine<'a> {
    /// Creates an engine for a pattern AST under the given flags.
    pub fn new(ast: &'a Ast, flags: Flags) -> Engine<'a> {
        Engine {
            ast,
            flags,
            group_count: ast.capture_count(),
            fuel: Cell::new(None),
            exhausted: Cell::new(false),
        }
    }

    /// Attempts an anchored match at character offset `start`.
    ///
    /// Returns the match with final capture state, or `None`. This is
    /// the spec's `[[Match]](input, start)`; the unanchored search loop
    /// lives in [`crate::api::RegExp::exec`].
    pub fn match_at(&self, input: &[char], start: usize) -> Option<Match> {
        if start > input.len() {
            return None;
        }
        let mut caps = Captures::new(self.group_count);
        let mut end = None;
        let matched = self.matches(self.ast, input, start, &mut caps, &mut |pos, _caps| {
            end = Some(pos);
            true
        });
        if matched {
            Some(Match {
                start,
                end: end.expect("continuation ran on success"),
                captures: caps,
            })
        } else {
            None
        }
    }

    /// [`Engine::match_at`] with a backtracking-step budget.
    ///
    /// Every AST-node visit costs one step. When the budget runs out the
    /// attempt is abandoned and `Err(StepLimitExceeded)` is returned —
    /// crucially *not* `Ok(None)`, because a starved attempt proves
    /// nothing about the word. A budget of a few hundred thousand steps
    /// decides every non-adversarial pattern.
    ///
    /// In the two-engine world this budget doubles as a ReDoS detector:
    /// patterns the [`crate::select()`] analysis routes to the Pike VM are
    /// decided in `O(n·m)` steps, so a pattern that exhausts a generous
    /// budget *here* is exhibiting catastrophic backtracking (it either
    /// needed backreferences, or was deliberately run on this engine for
    /// detection/differential purposes).
    ///
    /// # Errors
    ///
    /// [`StepLimitExceeded`] when `step_limit` visits were spent without
    /// reaching a verdict.
    pub fn match_at_within(
        &self,
        input: &[char],
        start: usize,
        step_limit: u64,
    ) -> Result<Option<Match>, StepLimitExceeded> {
        self.fuel.set(Some(step_limit));
        self.exhausted.set(false);
        let result = self.match_at(input, start);
        let spent = self.exhausted.get();
        self.fuel.set(None);
        self.exhausted.set(false);
        // Once the budget runs out every sub-match fails, which can
        // *invert* a negative lookahead on the way back up — so even a
        // returned match is untrustworthy after exhaustion.
        if spent {
            Err(StepLimitExceeded)
        } else {
            Ok(result)
        }
    }

    /// The unanchored search loop (first match at or after `start`)
    /// under a *single* step budget shared across all start positions —
    /// total work stays bounded even when every position backtracks.
    ///
    /// # Errors
    ///
    /// [`StepLimitExceeded`] when the budget ran out before a verdict.
    pub fn search_within(
        &self,
        input: &[char],
        start: usize,
        step_limit: u64,
    ) -> Result<Option<Match>, StepLimitExceeded> {
        self.fuel.set(Some(step_limit));
        self.exhausted.set(false);
        let mut found = None;
        for at in start..=input.len() {
            if let Some(m) = self.match_at(input, at) {
                found = Some(m);
                break;
            }
            if self.exhausted.get() {
                break;
            }
        }
        let spent = self.exhausted.get();
        self.fuel.set(None);
        self.exhausted.set(false);
        if spent {
            Err(StepLimitExceeded)
        } else {
            Ok(found)
        }
    }

    /// Core matcher: match `node` at `pos`, then run the continuation.
    ///
    /// The continuation may mutate `caps` further; on failure the matcher
    /// restores any capture slots it modified before returning, so the
    /// caller observes unchanged state.
    fn matches(
        &self,
        node: &Ast,
        input: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        if let Some(fuel) = self.fuel.get() {
            if fuel == 0 {
                // Out of budget: fail everything so the whole attempt
                // unwinds quickly; match_at_within reports the reason.
                self.exhausted.set(true);
                return false;
            }
            self.fuel.set(Some(fuel - 1));
        }
        match node {
            Ast::Empty => k(pos, caps),
            Ast::Literal(c) => {
                if pos < input.len() && self.char_eq(*c, input[pos]) {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Ast::Dot => {
                if pos < input.len() && (self.flags.dot_all || !is_line_terminator(input[pos])) {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Ast::Class(set) => {
                if pos < input.len() && self.class_contains(set, input[pos]) {
                    k(pos + 1, caps)
                } else {
                    false
                }
            }
            Ast::Assertion(kind) => {
                if self.assertion_holds(*kind, input, pos) {
                    k(pos, caps)
                } else {
                    false
                }
            }
            Ast::Group { index, ast } => {
                let slot = *index as usize;
                let saved = caps.0[slot];
                let ok = self.matches(ast, input, pos, caps, &mut |end, caps| {
                    let inner_saved = caps.0[slot];
                    caps.0[slot] = Some((pos, end));
                    if k(end, caps) {
                        true
                    } else {
                        caps.0[slot] = inner_saved;
                        false
                    }
                });
                if !ok {
                    caps.0[slot] = saved;
                }
                ok
            }
            Ast::NonCapturing(inner) => self.matches(inner, input, pos, caps, k),
            Ast::Lookahead { negative, ast } => self.lookahead(*negative, ast, input, pos, caps, k),
            Ast::Repeat {
                ast,
                min,
                max,
                lazy,
            } => {
                let inner_groups = ast.capture_indices();
                self.repeat(
                    ast,
                    *min,
                    max.unwrap_or(u32::MAX),
                    !*lazy,
                    &inner_groups,
                    input,
                    pos,
                    0,
                    caps,
                    k,
                )
            }
            Ast::Alt(branches) => {
                for branch in branches {
                    if self.matches(branch, input, pos, caps, k) {
                        return true;
                    }
                }
                false
            }
            Ast::Concat(items) => self.match_seq(items, input, pos, caps, k),
            Ast::Backref(group) => self.backref(*group, input, pos, caps, k),
        }
    }

    fn match_seq(
        &self,
        items: &[Ast],
        input: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        match items.split_first() {
            None => k(pos, caps),
            Some((first, rest)) => self.matches(first, input, pos, caps, &mut |pos2, caps| {
                self.match_seq(rest, input, pos2, caps, k)
            }),
        }
    }

    /// ES262 RepeatMatcher. `count` is the number of completed
    /// iterations.
    // if_same_then_else: greedy and lazy branches contain the same two
    // calls in OPPOSITE order; evaluation order is matching precedence.
    #[allow(clippy::too_many_arguments, clippy::if_same_then_else)]
    fn repeat(
        &self,
        atom: &Ast,
        min: u32,
        max: u32,
        greedy: bool,
        inner_groups: &[u32],
        input: &[char],
        pos: usize,
        count: u32,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        if count < min {
            // Mandatory iterations.
            self.repeat_once(
                atom,
                min,
                max,
                greedy,
                inner_groups,
                input,
                pos,
                count,
                caps,
                k,
            )
        } else if greedy {
            self.repeat_once(
                atom,
                min,
                max,
                greedy,
                inner_groups,
                input,
                pos,
                count,
                caps,
                k,
            ) || k(pos, caps)
        } else {
            k(pos, caps)
                || self.repeat_once(
                    atom,
                    min,
                    max,
                    greedy,
                    inner_groups,
                    input,
                    pos,
                    count,
                    caps,
                    k,
                )
        }
    }

    /// One more iteration of a quantified atom, then recurse.
    #[allow(clippy::too_many_arguments)]
    fn repeat_once(
        &self,
        atom: &Ast,
        min: u32,
        max: u32,
        greedy: bool,
        inner_groups: &[u32],
        input: &[char],
        pos: usize,
        count: u32,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        if count >= max {
            return false;
        }
        // RepeatMatcher step 4: clear capture slots inside the atom at
        // the start of each iteration.
        let saved: Vec<CaptureSlot> = inner_groups.iter().map(|&g| caps.0[g as usize]).collect();
        for &g in inner_groups {
            caps.0[g as usize] = None;
        }
        let ok = self.matches(atom, input, pos, caps, &mut |pos2, caps| {
            // An iteration beyond the minimum that consumed nothing
            // would loop forever; the spec fails it.
            if pos2 == pos && count + 1 > min {
                return false;
            }
            self.repeat(
                atom,
                min,
                max,
                greedy,
                inner_groups,
                input,
                pos2,
                count + 1,
                caps,
                k,
            )
        });
        if !ok {
            for (i, &g) in inner_groups.iter().enumerate() {
                caps.0[g as usize] = saved[i];
            }
        }
        ok
    }

    fn lookahead(
        &self,
        negative: bool,
        ast: &Ast,
        input: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        if negative {
            // Captures made while attempting a negative lookahead are
            // discarded whether it matches or not (spec: the Matcher runs
            // on a copy; on success the whole assertion fails).
            let mut probe = caps.clone();
            let matched = self.matches(ast, input, pos, &mut probe, &mut |_pos, _caps| true);
            if matched {
                false
            } else {
                k(pos, caps)
            }
        } else {
            // Positive lookahead: capture assignments persist, position
            // rewinds.
            let saved = caps.clone();
            let matched = self.matches(ast, input, pos, caps, &mut |_pos, _caps| true);
            if !matched {
                *caps = saved;
                return false;
            }
            if k(pos, caps) {
                true
            } else {
                *caps = saved;
                false
            }
        }
    }

    fn backref(
        &self,
        group: u32,
        input: &[char],
        pos: usize,
        caps: &mut Captures,
        k: &mut dyn FnMut(usize, &mut Captures) -> bool,
    ) -> bool {
        match caps.0[group as usize] {
            // Undefined group: matches the empty string (§21.2.2.9).
            None => k(pos, caps),
            Some((start, end)) => {
                let len = end - start;
                if pos + len > input.len() {
                    return false;
                }
                for i in 0..len {
                    if !self.char_eq(input[start + i], input[pos + i]) {
                        return false;
                    }
                }
                k(pos + len, caps)
            }
        }
    }

    fn assertion_holds(&self, kind: AssertionKind, input: &[char], pos: usize) -> bool {
        assertion_holds(kind, input, pos, self.flags)
    }

    fn char_eq(&self, a: char, b: char) -> bool {
        char_eq(a, b, self.flags)
    }

    fn class_contains(&self, set: &regex_syntax_es6::class::ClassSet, c: char) -> bool {
        class_contains(set, c, self.flags)
    }
}

/// ES262 §21.2.2.6 assertion semantics, shared verbatim by both engines
/// so the Pike VM can never drift from the backtracker on `^`/`$`/`\b`.
pub(crate) fn assertion_holds(
    kind: AssertionKind,
    input: &[char],
    pos: usize,
    flags: Flags,
) -> bool {
    match kind {
        AssertionKind::StartAnchor => {
            pos == 0 || (flags.multiline && is_line_terminator(input[pos - 1]))
        }
        AssertionKind::EndAnchor => {
            pos == input.len() || (flags.multiline && is_line_terminator(input[pos]))
        }
        AssertionKind::WordBoundary => {
            is_word_at(input, pos.wrapping_sub(1)) != is_word_at(input, pos)
        }
        AssertionKind::NotWordBoundary => {
            is_word_at(input, pos.wrapping_sub(1)) == is_word_at(input, pos)
        }
    }
}

pub(crate) fn is_word_at(input: &[char], pos: usize) -> bool {
    input
        .get(pos)
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == '_')
}

/// Literal comparison under the flag set (ES262 §21.2.2.8.2), shared by
/// both engines.
pub(crate) fn char_eq(a: char, b: char, flags: Flags) -> bool {
    if a == b {
        return true;
    }
    if flags.ignore_case {
        canonicalize(a, flags.unicode) == canonicalize(b, flags.unicode)
    } else {
        false
    }
}

/// Class membership under the flag set, shared by both engines.
pub(crate) fn class_contains(
    set: &regex_syntax_es6::class::ClassSet,
    c: char,
    flags: Flags,
) -> bool {
    if !flags.ignore_case {
        return set.contains(c);
    }
    // ES262 §21.2.2.8.1 CharacterSetMatcher: `c` is in the class iff
    // some member `a` of the *raw* item set has Canonicalize(a) ==
    // Canonicalize(c); the class-level negation applies only
    // afterwards. (Testing case variants against the negated set —
    // the old shortcut — inverted the semantics: `[^b]` under `i`
    // accepted `b` because `B ∈ [^b]`.)
    //
    // Fast path first: `c` trivially satisfies the canonical
    // equation with itself, and this is the backtracking engine's
    // hot loop — the variant vectors only allocate on a miss.
    if set.raw_contains(c) {
        return !set.negated;
    }
    let canon = canonicalize(c, flags.unicode);
    let inside = std::iter::once(canon)
        .chain(regex_syntax_es6::class::simple_case_variants(c))
        .chain(regex_syntax_es6::class::simple_case_variants(canon))
        .any(|a| a != c && canonicalize(a, flags.unicode) == canon && set.raw_contains(a));
    inside != set.negated
}

/// ES262 §21.2.2.8.2 Canonicalize: simple uppercase mapping, keeping the
/// original character when the mapping is multi-character or when a
/// non-ASCII character would map to an ASCII one (non-unicode mode).
///
/// The non-unicode rule delegates to
/// [`regex_syntax_es6::class::canonicalize_simple`] — the same function
/// class rewriting (`ClassSet::case_insensitive`) uses — so the engine
/// and the automata pipeline can never drift apart on the
/// spec-critical equivalence again.
pub fn canonicalize(c: char, unicode: bool) -> char {
    if !unicode {
        return regex_syntax_es6::class::canonicalize_simple(c);
    }
    let mut upper = c.to_uppercase();
    if upper.clone().count() != 1 {
        return c;
    }
    upper.next().expect("one char")
}

#[cfg(test)]
mod tests {
    use super::*;
    use regex_syntax_es6::parse;

    fn engine_match(
        pattern: &str,
        flags: &str,
        input: &str,
    ) -> Option<(usize, usize, Vec<Option<String>>)> {
        let ast = parse(pattern).expect("pattern should parse");
        let flags: Flags = flags.parse().expect("flags should parse");
        let engine = Engine::new(&ast, flags);
        let chars: Vec<char> = input.chars().collect();
        for start in 0..=chars.len() {
            if let Some(m) = engine.match_at(&chars, start) {
                let caps = m
                    .captures
                    .0
                    .iter()
                    .skip(1)
                    .map(|slot| slot.map(|(s, e)| chars[s..e].iter().collect::<String>()))
                    .collect();
                return Some((m.start, m.end, caps));
            }
        }
        None
    }

    #[test]
    fn literal_match() {
        assert_eq!(engine_match("abc", "", "xxabcxx"), Some((2, 5, vec![])));
    }

    #[test]
    fn greedy_star_takes_longest() {
        let (start, end, _) = engine_match("a*", "", "aaa").expect("match");
        assert_eq!((start, end), (0, 3));
    }

    #[test]
    fn lazy_star_takes_shortest() {
        let (start, end, _) = engine_match("a*?", "", "aaa").expect("match");
        assert_eq!((start, end), (0, 0));
    }

    #[test]
    fn matching_precedence_affects_captures() {
        // §3.4 of the paper: /^a*(a)?$/ on "aa" must leave C1 undefined
        // because the greedy a* consumes both characters.
        let (_, _, caps) = engine_match("^a*(a)?$", "", "aa").expect("match");
        assert_eq!(caps, vec![None]);
    }

    #[test]
    fn lazy_gives_capture_instead() {
        // With a lazy star the optional group takes the last `a`.
        let (_, _, caps) = engine_match("^a*?(a)?", "", "aa").expect("match");
        assert_eq!(caps, vec![Some("a".to_string())]);
    }

    #[test]
    fn alternation_prefers_left() {
        let (start, end, _) = engine_match("a|ab", "", "ab").expect("match");
        assert_eq!((start, end), (0, 1));
    }

    #[test]
    fn capture_groups_record_last_match() {
        // "bbbbcbcd".match(/a|((b)*c)*d/) -> ["bbbbcbcd", "bc", "b"] (§2.2)
        let (_, _, caps) = engine_match("a|((b)*c)*d", "", "bbbbcbcd").expect("match");
        assert_eq!(caps, vec![Some("bc".to_string()), Some("b".to_string())]);
    }

    #[test]
    fn quantified_group_resets_captures_per_iteration() {
        // ES6: /(?:(a)|(b))+/ on "ab" clears group 1 in iteration 2.
        let (_, _, caps) = engine_match("(?:(a)|(b))+", "", "ab").expect("match");
        assert_eq!(caps, vec![None, Some("b".to_string())]);
    }

    #[test]
    fn empty_iteration_terminates() {
        // (a?)* on "" must terminate and match empty.
        let (start, end, _) = engine_match("(a?)*", "", "").expect("match");
        assert_eq!((start, end), (0, 0));
    }

    #[test]
    fn backreference_matches_previous_capture() {
        assert!(engine_match(r"(\w+) \1", "", "hey hey").is_some());
        assert!(engine_match(r"^(\w+) \1$", "", "hey you").is_none());
    }

    #[test]
    fn backreference_undefined_matches_empty() {
        // Group 1 never matches, so \1 matches ε.
        assert_eq!(
            engine_match(r"(?:(a)|b)\1c", "", "bc").map(|(s, e, _)| (s, e)),
            Some((0, 2))
        );
    }

    #[test]
    fn mutable_backreference_iterations() {
        // §4.3: /((a|b)\2)+/ matches "aabb" with \2 rebinding.
        assert!(engine_match(r"^((a|b)\2)+$", "", "aabb").is_some());
        assert!(engine_match(r"^((a|b)\2)+$", "", "aabab").is_none());
    }

    #[test]
    fn paper_mutable_backref_strings() {
        // §4.3 discusses /((a|b)\2)+\1\2/. The paper's illustrative
        // string "aabbaabbb" does NOT match under real ES6 semantics
        // (verified against V8): per-iteration capture reset forces \1
        // to equal the final block. These assertions encode the
        // engine-verified behaviour.
        assert!(engine_match(r"^((a|b)\2)+\1\2$", "", "aaaaa").is_some());
        assert!(engine_match(r"^((a|b)\2)+\1\2$", "", "aabbbbb").is_some());
        assert!(engine_match(r"^((a|b)\2)+\1\2$", "", "aabbaabbb").is_none());
        assert!(engine_match(r"^((a|b)\2)+\1\2$", "", "aabaaabaa").is_none());
    }

    #[test]
    fn positive_lookahead() {
        assert!(engine_match(r"foo(?=bar)", "", "foobar").is_some());
        assert!(engine_match(r"foo(?=bar)", "", "foobaz").is_none());
    }

    #[test]
    fn negative_lookahead() {
        assert!(engine_match(r"foo(?!bar)", "", "foobaz").is_some());
        assert!(engine_match(r"^foo(?!bar)", "", "foobar").is_none());
    }

    #[test]
    fn lookahead_captures_persist() {
        let (_, _, caps) = engine_match(r"(?=(ab))a", "", "ab").expect("match");
        assert_eq!(caps, vec![Some("ab".to_string())]);
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(
            engine_match(r"\bfoo\b", "", "a foo b").map(|(s, e, _)| (s, e)),
            Some((2, 5))
        );
        assert!(engine_match(r"\bfoo\b", "", "afoob").is_none());
        assert!(engine_match(r"\Bfoo", "", "afoo").is_some());
        assert!(engine_match(r"^\Bfoo", "", " foo").is_none());
    }

    #[test]
    fn anchors_multiline() {
        assert!(engine_match("^b$", "m", "a\nb\nc").is_some());
        assert!(engine_match("^b$", "", "a\nb\nc").is_none());
    }

    #[test]
    fn dot_excludes_newline() {
        assert!(engine_match("a.b", "", "a\nb").is_none());
        assert!(engine_match("a.b", "s", "a\nb").is_some());
        assert!(engine_match("a.b", "", "axb").is_some());
    }

    #[test]
    fn ignore_case() {
        assert!(engine_match("abc", "i", "AbC").is_some());
        assert!(engine_match("[a-z]+", "i", "HELLO").is_some());
        assert!(engine_match(r"(a)\1", "i", "aA").is_some());
    }

    #[test]
    fn bounded_repetition() {
        assert_eq!(
            engine_match("a{2,3}", "", "aaaa").map(|(s, e, _)| (s, e)),
            Some((0, 3))
        );
        assert!(engine_match("^a{2,3}$", "", "a").is_none());
        assert!(engine_match("^a{2,3}$", "", "aaaa").is_none());
    }

    #[test]
    fn lazy_bounded_repetition() {
        assert_eq!(
            engine_match("a{2,3}?", "", "aaaa").map(|(s, e, _)| (s, e)),
            Some((0, 2))
        );
    }

    #[test]
    fn goood_paper_example() {
        // /goo+d/ from §1.
        assert!(engine_match("goo+d", "", "it is goood").is_some());
        assert!(engine_match("goo+d", "", "god").is_none());
    }

    #[test]
    fn xml_tag_example() {
        // §1: /<(\w+)>.*?<\/\1>/ parses matching XML tags.
        let (_, _, caps) = engine_match(r"<(\w+)>.*?<\/\1>", "", "<b>bold</b>").expect("match");
        assert_eq!(caps, vec![Some("b".to_string())]);
        assert!(engine_match(r"^<(\w+)>.*?<\/\1>$", "", "<b>bold</i>").is_none());
    }

    #[test]
    fn nested_quantifier_backtracking() {
        assert!(engine_match("^(a+)+b$", "", "aaab").is_some());
        assert!(engine_match("^(a|aa)*b$", "", "aaaaab").is_some());
    }

    #[test]
    fn step_budget_decides_easy_patterns() {
        let ast = parse("goo+d").expect("parse");
        let engine = Engine::new(&ast, Flags::empty());
        let chars: Vec<char> = "it is goood".chars().collect();
        let m = engine
            .search_within(&chars, 0, 10_000)
            .expect("ample budget")
            .expect("match");
        assert_eq!((m.start, m.end), (6, 11));
        assert_eq!(
            engine.search_within(&chars, 0, 10_000).expect("verdict"),
            engine.match_at(&chars, 6)
        );
    }

    #[test]
    fn step_budget_aborts_catastrophic_backtracking() {
        // (a+)+b on a^n is the classic exponential blowup.
        let ast = parse("^(a+)+b$").expect("parse");
        let engine = Engine::new(&ast, Flags::empty());
        let chars: Vec<char> = "a".repeat(40).chars().collect();
        assert_eq!(
            engine.match_at_within(&chars, 0, 50_000),
            Err(StepLimitExceeded)
        );
        // The engine is reusable after exhaustion: unbounded calls see
        // no leftover fuel.
        let ok: Vec<char> = "aab".chars().collect();
        assert!(engine.match_at(&ok, 0).is_some());
    }

    #[test]
    fn budgeted_verdicts_agree_with_unbounded_ones() {
        for (pattern, input) in [
            ("a|((b)*c)*d", "bbbbcbcd"),
            (r"^((a|b)\2)+$", "aabb"),
            ("(?=(ab))a", "ab"),
            ("a{2,3}?", "aaaa"),
        ] {
            let ast = parse(pattern).expect("parse");
            let engine = Engine::new(&ast, Flags::empty());
            let chars: Vec<char> = input.chars().collect();
            let bounded = engine
                .search_within(&chars, 0, 1_000_000)
                .expect("ample budget");
            let unbounded = (0..=chars.len()).find_map(|at| engine.match_at(&chars, at));
            assert_eq!(bounded, unbounded, "pattern {pattern:?}");
        }
    }

    #[test]
    fn canonicalize_sharp_s() {
        // ß uppercases to "SS" (multi-char): stays ß in non-unicode mode.
        assert_eq!(canonicalize('ß', false), 'ß');
        assert_eq!(canonicalize('a', false), 'A');
    }
}

//! An ES6-compliant regular expression matcher with two engines.
//!
//! This crate is the *concrete matcher* of the PLDI'19 reproduction: the
//! specification-faithful oracle that the CEGAR refinement loop
//! (Algorithm 1 of the paper) uses to validate candidate capture-group
//! assignments.
//!
//! Two engines share the exact same observable semantics:
//!
//! - [`exec::Engine`] — the backtracking reference. It interprets the
//!   [`regex_syntax_es6::Ast`] directly with the continuation-passing
//!   semantics of ES262 §21.2.2, so matching precedence (greedy/lazy),
//!   capture-reset-per-iteration, backreferences and lookaheads all
//!   behave exactly as in a JavaScript engine. Worst-case exponential;
//!   its step budget doubles as a ReDoS detector.
//! - [`pikevm::PikeVm`] — the `O(n·m)` fast path: the AST is compiled
//!   to a Thompson NFA program ([`prog`]) with capture-slot saves,
//!   per-iteration capture resets, char-class compression and literal
//!   prefilters, then simulated breadth-first with priority-ordered
//!   thread lists.
//!
//! The static analysis in [`select()`] routes each pattern: anything the
//! compiler cannot express faithfully (backreferences foremost) stays on
//! the backtracker; [`RegExp`] applies the routing transparently.
//!
//! # Examples
//!
//! ```
//! use es6_matcher::RegExp;
//!
//! let mut re = RegExp::from_literal(r"/<(\w+)>([0-9]*)<\/\1>/")?;
//! let m = re.exec("<timeout>500</timeout>").expect("should match");
//! assert_eq!(m.group(1), Some("timeout"));
//! assert_eq!(m.group(2), Some("500"));
//! # Ok::<(), regex_syntax_es6::ParseError>(())
//! ```

pub mod api;
pub mod exec;
pub mod pikevm;
pub mod prog;
pub mod select;

pub use api::{string_match, string_replace, string_search, string_split, MatchResult, RegExp};
pub use exec::{canonicalize, Captures, Engine, Match, StepLimitExceeded};
pub use pikevm::PikeVm;
pub use prog::{compile, Prefilter, Prog};
pub use select::{select, EngineKind, Selection};

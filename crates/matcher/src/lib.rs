//! An ES6-compliant backtracking regular expression matcher.
//!
//! This crate is the *concrete matcher* of the PLDI'19 reproduction: the
//! specification-faithful oracle that the CEGAR refinement loop
//! (Algorithm 1 of the paper) uses to validate candidate capture-group
//! assignments. It interprets the [`regex_syntax_es6::Ast`] directly with
//! the continuation-passing semantics of ES262 §21.2.2, so matching
//! precedence (greedy/lazy), capture-reset-per-iteration, backreferences
//! and lookaheads all behave exactly as in a JavaScript engine.
//!
//! # Examples
//!
//! ```
//! use es6_matcher::RegExp;
//!
//! let mut re = RegExp::from_literal(r"/<(\w+)>([0-9]*)<\/\1>/")?;
//! let m = re.exec("<timeout>500</timeout>").expect("should match");
//! assert_eq!(m.group(1), Some("timeout"));
//! assert_eq!(m.group(2), Some("500"));
//! # Ok::<(), regex_syntax_es6::ParseError>(())
//! ```

pub mod api;
pub mod exec;

pub use api::{string_match, string_replace, string_search, string_split, MatchResult, RegExp};
pub use exec::{canonicalize, Captures, Engine, Match, StepLimitExceeded};

//! ExpoSE-regex: sound ES6 regular expression semantics for dynamic
//! symbolic execution — a Rust reproduction of Loring, Mitchell and
//! Kinder, *Sound Regular Expression Semantics for Dynamic Symbolic
//! Execution of JavaScript* (PLDI 2019).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`syntax`] — full ES6 regex parser, AST, rewriting, analyses;
//! * [`matcher`] — specification-faithful backtracking matcher (oracle);
//! * [`automata`] — classical regexes, NFAs, minterm-alphabet DFAs;
//! * [`strsolve`] — the string constraint solver (Z3 substitute);
//! * [`core`] — capturing-language models, §4.4 negation, the CEGAR
//!   matching-precedence refinement, the Algorithm 2 API models;
//! * [`dse`] — the concolic engine for a JavaScript-like language,
//!   plus the work-stealing job scheduler;
//! * [`service`] — the NDJSON job service over that scheduler
//!   (`expose-serve`);
//! * [`fuzz`] — the deterministic differential fuzzer (`fuzz` binary)
//!   cross-checking matcher, automata, solver and CEGAR against each
//!   other, with a delta-debugging reproducer shrinker;
//! * [`survey`]/[`corpus`] — the §7.1 usage survey and its synthetic
//!   corpus.
//!
//! # Quickstart
//!
//! Ask for a string matching `/^(a+)(b+)$/` whose *second* group is
//! `"bb"`, with engine-faithful (greedy) capture assignment:
//!
//! ```
//! use expose::core::{api::build_match_model, cegar::CegarSolver, model::BuildConfig};
//! use expose::strsolve::{Formula, VarPool};
//! use expose::syntax::Regex;
//!
//! let regex = Regex::parse_literal("/^(a+)(b+)$/")?;
//! let mut pool = VarPool::new();
//! let c = build_match_model(&regex, true, &mut pool, &BuildConfig::default());
//! let problem = Formula::and(vec![
//!     Formula::bool_is(c.captures[2].defined, true),
//!     Formula::eq_lit(c.captures[2].value, "bb"),
//! ]);
//! let result = CegarSolver::default().solve(&problem, &[c.clone()]);
//! let model = result.outcome.model().expect("satisfiable");
//! let input = model.get_str(c.input).expect("assigned");
//! assert!(input.ends_with("bb"));
//! # Ok::<(), expose::syntax::ParseError>(())
//! ```

pub use automata;
pub use corpus;
pub use es6_matcher as matcher;
pub use expose_core as core;
pub use expose_dse as dse;
pub use expose_fuzz as fuzz;
pub use expose_service as service;
pub use regex_syntax_es6 as syntax;
pub use strsolve;
pub use survey;
